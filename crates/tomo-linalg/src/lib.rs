//! Dense linear-algebra substrate for the network-tomography reproduction.
//!
//! The Congestion Probability Computation algorithm of the paper ("Shifting
//! Network Tomography Toward A Practical Goal", CoNEXT 2011) reduces to
//! assembling a binary system matrix over *path sets* and *correlation
//! subsets*, computing its null space, incrementally updating that null space
//! as new equations are added (Algorithm 2 of the paper), and finally solving
//! a log-linear least-squares problem.
//!
//! This crate implements exactly the numeric machinery those steps need,
//! without pulling in an external BLAS/LAPACK dependency:
//!
//! * [`Matrix`] — a dense, row-major `f64` matrix with the usual arithmetic.
//! * [`Vector`] — a dense `f64` vector.
//! * [`gauss`] — Gaussian elimination: RREF, rank, and exact solving.
//! * [`qr`] — Householder QR decomposition.
//! * [`nullspace`] — null-space basis extraction from the RREF.
//! * [`nullspace_update`] — the paper's Algorithm 2 (incremental null-space
//!   update after appending one row to the system matrix).
//! * [`lstsq`] — least-squares solving (QR-based with a regularized
//!   normal-equation fallback for rank-deficient systems).
//! * [`sparse`] — CSR representation of the 0/1 routing systems and a
//!   conjugate-gradient least-squares solve that touches only the nonzeros;
//!   the dense solvers above remain the reference oracle.
//! * [`lu`] — partial-pivoting LU factors for factor-once / solve-many
//!   callers (the cached online pseudo-solvers).
//!
//! All routines are deterministic and allocation-honest: they never spawn
//! threads and never touch global state, so they can be used from the
//! experiment harness's parallel sweeps without synchronization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gauss;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod nullspace;
pub mod nullspace_update;
pub mod qr;
pub mod sparse;
pub mod vector;

pub use gauss::{rank, rref, solve_multi, solve_square, RrefResult};
pub use lstsq::{least_squares, LstsqOptions, LstsqSolution};
pub use lu::LuFactors;
pub use matrix::Matrix;
pub use nullspace::nullspace;
pub use nullspace_update::{nullspace_update, NullSpaceUpdate};
pub use qr::{qr_decompose, QrDecomposition};
pub use sparse::{
    should_use_sparse, sparse_least_squares, SparseMatrix, SPARSE_MAX_DENSITY, SPARSE_MIN_COLS,
};
pub use vector::Vector;

/// Default numerical tolerance used throughout the crate to decide whether a
/// floating-point value should be treated as zero (pivot selection, rank
/// decisions, null-space membership).
pub const DEFAULT_TOL: f64 = 1e-9;
