//! Least-squares solving for the (log-linear) tomography systems.
//!
//! The probability-computation algorithms assemble systems `A y = b` where
//! `A` is a binary path-set / correlation-subset incidence matrix and `b`
//! holds logarithms of empirical probabilities. The system may be square,
//! overdetermined, *or rank deficient* (on sparse topologies where
//! Identifiability++ fails). This module provides a single entry point,
//! [`least_squares`], that:
//!
//! 1. tries a Householder-QR solve when `A` has full column rank;
//! 2. otherwise falls back to ridge-regularized normal equations
//!    `(AᵀA + λI) y = Aᵀ b`, which always yields a well-defined (minimum-ish
//!    norm) solution and degrades gracefully on noisy, low-rank systems.
//!
//! The returned [`LstsqSolution`] records which route was taken and which
//! unknowns are *identifiable* (i.e. not free to move within the null space
//! of `A`), so callers can distinguish "estimated" from "unconstrained"
//! probabilities.

use crate::gauss::{rref_with_tol, solve_square};
use crate::matrix::Matrix;
use crate::nullspace::nullspace_with_tol;
use crate::qr::qr_least_squares;
use crate::vector::Vector;
use crate::DEFAULT_TOL;

/// Options controlling the least-squares solver.
#[derive(Clone, Debug)]
pub struct LstsqOptions {
    /// Ridge regularization strength used by the fallback solver.
    pub ridge: f64,
    /// Zero tolerance used for rank decisions.
    pub tol: f64,
    /// When `true` (default), the solver computes the null space of `A` to
    /// report per-unknown identifiability. This costs an extra elimination
    /// pass over `A`; callers that track identifiability themselves (the
    /// Correlation-complete algorithm maintains it incrementally via
    /// Algorithm 2) can switch it off.
    pub compute_identifiability: bool,
}

impl Default for LstsqOptions {
    fn default() -> Self {
        Self {
            ridge: 1e-8,
            tol: DEFAULT_TOL,
            compute_identifiability: true,
        }
    }
}

impl LstsqOptions {
    /// Options that skip the identifiability analysis (cheaper on large
    /// systems).
    pub fn without_identifiability() -> Self {
        Self {
            compute_identifiability: false,
            ..Self::default()
        }
    }
}

/// A least-squares solution together with diagnostic information.
#[derive(Clone, Debug)]
pub struct LstsqSolution {
    /// The solution vector (length = number of columns of `A`).
    pub x: Vector,
    /// Squared L2 norm of the residual `A x − b`.
    pub residual_norm_sq: f64,
    /// Rank of `A` as determined during solving.
    pub rank: usize,
    /// `identifiable[i]` is `true` when unknown `i` does not participate in
    /// any null-space direction of `A` (its value is pinned by the data).
    pub identifiable: Vec<bool>,
    /// `true` when the rank-deficient fallback (ridge) path was used.
    pub used_ridge_fallback: bool,
}

impl LstsqSolution {
    /// Number of identifiable unknowns.
    pub fn identifiable_count(&self) -> usize {
        self.identifiable.iter().filter(|&&b| b).count()
    }
}

/// Solves `min_x ||A x − b||` and reports identifiability of each unknown.
///
/// # Panics
/// Panics if `b.len() != a.rows()`.
pub fn least_squares(a: &Matrix, b: &Vector, opts: &LstsqOptions) -> LstsqSolution {
    assert_eq!(a.rows(), b.len(), "rhs length must equal number of rows");
    let n = a.cols();
    if n == 0 {
        return LstsqSolution {
            x: Vector::zeros(0),
            residual_norm_sq: b.dot(b),
            rank: 0,
            identifiable: Vec::new(),
            used_ridge_fallback: false,
        };
    }

    // Identifiability: unknown i is identifiable iff every null-space basis
    // vector has a (numerically) zero i-th component.
    let (rank, identifiable) = if opts.compute_identifiability {
        let ns = nullspace_with_tol(a, opts.tol);
        let rank = n - ns.cols();
        let mut identifiable = vec![true; n];
        for i in 0..n {
            for j in 0..ns.cols() {
                if ns[(i, j)].abs() > 1e-7 {
                    identifiable[i] = false;
                    break;
                }
            }
        }
        (rank, identifiable)
    } else {
        // Unknown rank: assume the best case so the QR fast path can still be
        // attempted; it falls back to ridge if QR detects rank deficiency.
        (n.min(a.rows()), vec![true; n])
    };

    // Fast path: full column rank and at least as many rows as columns.
    if rank == n && a.rows() >= n {
        if let Some(x) = qr_least_squares(a, b, opts.tol) {
            let residual = &a.matvec(&x) - b;
            return LstsqSolution {
                residual_norm_sq: residual.dot(&residual),
                x,
                rank,
                identifiable,
                used_ridge_fallback: false,
            };
        }
    }

    // Fallback: ridge-regularized normal equations.
    let at = a.transpose();
    let mut ata = at.matmul(a);
    for i in 0..n {
        ata[(i, i)] += opts.ridge;
    }
    let atb = at.matvec(b);
    let x = solve_square(&ata, &atb).unwrap_or_else(|| {
        // With the ridge term the system should always be regular; if the
        // numerics still fail (pathological scaling) return zeros rather
        // than panicking deep inside an experiment sweep.
        Vector::zeros(n)
    });
    let residual = &a.matvec(&x) - b;
    LstsqSolution {
        residual_norm_sq: residual.dot(&residual),
        x,
        rank,
        identifiable,
        used_ridge_fallback: true,
    }
}

/// Convenience wrapper: solves the system with default options.
pub fn least_squares_default(a: &Matrix, b: &Vector) -> LstsqSolution {
    least_squares(a, b, &LstsqOptions::default())
}

/// Solves a *consistent* square or overdetermined binary system exactly when
/// possible, used by unit tests and the toy-topology worked examples.
/// Returns `None` when the system matrix is rank deficient.
pub fn solve_exact(a: &Matrix, b: &Vector) -> Option<Vector> {
    let opts = LstsqOptions::default();
    let r = rref_with_tol(a, opts.tol);
    if r.rank < a.cols() {
        return None;
    }
    qr_least_squares(a, b, opts.tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_rank_square_system() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 4.0]]);
        let b = Vector::from_slice(&[2.0, 8.0]);
        let sol = least_squares_default(&a, &b);
        assert!(sol.x.approx_eq(&Vector::from_slice(&[1.0, 2.0]), 1e-8));
        assert_eq!(sol.rank, 2);
        assert!(sol.identifiable.iter().all(|&b| b));
        assert!(!sol.used_ridge_fallback);
        assert!(sol.residual_norm_sq < 1e-16);
    }

    #[test]
    fn overdetermined_consistent_system() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let b = Vector::from_slice(&[3.0, -1.0, 2.0]);
        let sol = least_squares_default(&a, &b);
        assert!(sol.x.approx_eq(&Vector::from_slice(&[3.0, -1.0]), 1e-8));
    }

    #[test]
    fn rank_deficient_system_reports_unidentifiable_unknowns() {
        // x0 + x1 is pinned to 2, x2 is pinned to 5, but x0 and x1 are
        // individually unidentifiable.
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]]);
        let b = Vector::from_slice(&[2.0, 5.0]);
        let sol = least_squares_default(&a, &b);
        assert_eq!(sol.rank, 2);
        assert!(sol.used_ridge_fallback);
        assert_eq!(sol.identifiable, vec![false, false, true]);
        // The identifiable unknown must still be recovered accurately.
        assert!((sol.x[2] - 5.0).abs() < 1e-3);
        // And the identifiable *combination* x0 + x1 must be ~2.
        assert!((sol.x[0] + sol.x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn residual_is_orthogonal_to_column_space_on_full_rank() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![2.0, 1.0],
        ]);
        let b = Vector::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let sol = least_squares_default(&a, &b);
        let residual = &a.matvec(&sol.x) - &b;
        let grad = a.transpose().matvec(&residual);
        assert!(grad.norm_inf() < 1e-8);
    }

    #[test]
    fn empty_system_yields_empty_solution() {
        let a = Matrix::zeros(3, 0);
        let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let sol = least_squares_default(&a, &b);
        assert_eq!(sol.x.len(), 0);
        assert_eq!(sol.rank, 0);
    }

    #[test]
    fn solve_exact_requires_full_rank() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let b = Vector::from_slice(&[1.0, 2.0]);
        assert!(solve_exact(&a, &b).is_none());
    }
}
