//! Dense, row-major `f64` matrix.
//!
//! [`Matrix`] is intentionally simple: the tomography systems this crate
//! serves are at most a few thousand rows/columns, so a contiguous `Vec<f64>`
//! with explicit loops is both fast enough and easy to audit.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::vector::Vector;

/// A dense matrix of `f64` values stored in row-major order.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a closure evaluated at every `(row, col)` index.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from a slice of rows. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Returns the `(rows, cols)` shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns a copy of row `i` as a [`Vector`].
    pub fn row(&self, i: usize) -> Vector {
        assert!(i < self.rows, "row index out of bounds");
        Vector::from_slice(&self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Returns a copy of column `j` as a [`Vector`].
    pub fn col(&self, j: usize) -> Vector {
        assert!(j < self.cols, "column index out of bounds");
        Vector::from_iter((0..self.rows).map(|i| self[(i, j)]))
    }

    /// Returns row `i` as a slice.
    pub fn row_slice(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns a mutable slice over row `i`.
    pub fn row_slice_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Panics
    /// Panics if `row.len() != self.cols()` (unless the matrix is empty, in
    /// which case the row defines the column count).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &Vector) -> Vector {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        Vector::from_iter((0..self.rows).map(|i| {
            self.row_slice(i)
                .iter()
                .zip(v.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        }))
    }

    /// Row-vector * matrix product `r * self`, returning a vector of length
    /// `self.cols()`.
    ///
    /// # Panics
    /// Panics if `r.len() != self.rows()`.
    pub fn vecmat(&self, r: &Vector) -> Vector {
        assert_eq!(r.len(), self.rows, "vecmat dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let ri = r[i];
            if ri == 0.0 {
                continue;
            }
            for j in 0..self.cols {
                out[j] += ri * self[(i, j)];
            }
        }
        Vector::from_vec(out)
    }

    /// Multiplies every entry by `s`, in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns a copy of the matrix with every entry multiplied by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_in_place(s);
        m
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Removes column `j`, returning a new matrix with one fewer column.
    ///
    /// # Panics
    /// Panics if `j >= self.cols()`.
    pub fn without_col(&self, j: usize) -> Matrix {
        assert!(j < self.cols, "column index out of bounds");
        let mut out = Matrix::zeros(self.rows, self.cols - 1);
        for i in 0..self.rows {
            let mut cj = 0;
            for c in 0..self.cols {
                if c == j {
                    continue;
                }
                out[(i, cj)] = self[(i, c)];
                cj += 1;
            }
        }
        out
    }

    /// Returns a sub-matrix restricted to the given column indices (in the
    /// given order).
    pub fn select_cols(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for i in 0..self.rows {
            for (cj, &c) in cols.iter().enumerate() {
                out[(i, cj)] = self[(i, c)];
            }
        }
        out
    }

    /// Element-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Returns the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1).as_slice(), &[3.0, 4.0]);
        assert_eq!(m.col(0).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_against_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        let expected = Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]);
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![3.0, 4.0, -1.0]]);
        let i3 = Matrix::identity(3);
        let i2 = Matrix::identity(2);
        assert!(a.matmul(&i3).approx_eq(&a, 0.0));
        assert!(i2.matmul(&a).approx_eq(&a, 0.0));
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let v = Vector::from_slice(&[1.0, -1.0]);
        let av = a.matvec(&v);
        assert_eq!(av.as_slice(), &[-1.0, -1.0, -1.0]);

        let r = Vector::from_slice(&[1.0, 0.0, 2.0]);
        let ra = a.vecmat(&r);
        assert_eq!(ra.as_slice(), &[11.0, 14.0]);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn without_col_removes_the_right_column() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let r = m.without_col(1);
        assert_eq!(r.shape(), (2, 2));
        assert_eq!(r.row_slice(0), &[1.0, 3.0]);
        assert_eq!(r.row_slice(1), &[4.0, 6.0]);
    }

    #[test]
    fn select_cols_orders_columns() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let r = m.select_cols(&[2, 0]);
        assert_eq!(r.row_slice(0), &[3.0, 1.0]);
        assert_eq!(r.row_slice(1), &[6.0, 4.0]);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!((&a + &b).row_slice(0), &[4.0, 7.0]);
        assert_eq!((&b - &a).row_slice(0), &[2.0, 3.0]);
        assert_eq!(a.scaled(2.0).row_slice(0), &[2.0, 4.0]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }
}
