//! Boolean Inference algorithms (§3 of the paper).
//!
//! Boolean Inference takes the set of congested paths of **one** interval and
//! infers which links were congested during that interval. The paper studies
//! three state-of-the-art algorithms and shows that each can fail badly under
//! realistic conditions:
//!
//! * [`Sparsity`] (a.k.a. *Tomo*, Dhamdhere et al. / Duffield) — assumes
//!   Homogeneity and picks the fewest links that explain the congested
//!   paths; fails when congestion sits at the network edge.
//! * [`BayesianIndependence`] (a.k.a. *CLINK*, Nguyen & Thiran) — learns
//!   per-link congestion probabilities assuming Independence, then picks the
//!   most likely explanation per interval; fails when links are correlated.
//! * [`BayesianCorrelation`] (the paper's §3 algorithm) — like CLINK but
//!   learns probabilities under the Correlation-Sets assumption
//!   (via the Correlation-complete Probability Computation step); fails when
//!   the network dynamics are not stationary.
//!
//! All three implement [`BooleanInference`]: a learning phase over the whole
//! observation history followed by per-interval inference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bayesian_correlation;
pub mod bayesian_independence;
pub mod map_solver;
pub mod sparsity;

pub use bayesian_correlation::BayesianCorrelation;
pub use bayesian_independence::BayesianIndependence;
pub use map_solver::{greedy_weighted_cover, CandidateLinks};
pub use sparsity::Sparsity;

use tomo_graph::{LinkId, Network, PathId};
use tomo_prob::{AlgorithmAssumptions, ProbabilityEstimate};
use tomo_sim::PathObservations;

/// Common interface of the Boolean Inference algorithms.
pub trait BooleanInference {
    /// Short human-readable name.
    fn name(&self) -> &'static str;

    /// The assumptions / conditions / approximations of the algorithm
    /// (a column of Table 2).
    fn assumptions(&self) -> AlgorithmAssumptions;

    /// Learning phase: observe the whole experiment before per-interval
    /// inference (the Probability Computation step of the Bayesian
    /// algorithms; a no-op for Sparsity).
    fn learn(&mut self, network: &Network, observations: &PathObservations);

    /// Infers the set of congested links of one interval from that
    /// interval's congested paths.
    fn infer_interval(&self, network: &Network, congested_paths: &[PathId]) -> Vec<LinkId>;

    /// Whether the learning phase computes congestion probabilities (true
    /// for the Bayesian algorithms, whose learning *is* a Probability
    /// Computation step).
    fn computes_probabilities(&self) -> bool {
        false
    }

    /// The probability estimate computed by the learning phase, if any.
    fn probability_estimate(&self) -> Option<&ProbabilityEstimate> {
        None
    }
}

/// Runs an inference algorithm over every interval of an experiment,
/// returning the inferred congested-link set per interval.
pub fn infer_all_intervals(
    algorithm: &mut dyn BooleanInference,
    network: &Network,
    observations: &PathObservations,
) -> Vec<Vec<LinkId>> {
    algorithm.learn(network, observations);
    (0..observations.num_intervals())
        .map(|t| algorithm.infer_interval(network, &observations.congested_paths(t)))
        .collect()
}
