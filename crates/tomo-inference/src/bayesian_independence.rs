//! The *Bayesian-Independence* Boolean Inference algorithm (*CLINK*,
//! Nguyen & Thiran, INFOCOM 2007).
//!
//! Two steps (§3.1 of the paper):
//!
//! 1. **Probability Computation** under the Independence assumption — the
//!    [`tomo_prob::Independence`] baseline — learns each link's congestion
//!    probability from the whole observation history.
//! 2. **Probabilistic Inference** per interval — of all the link sets that
//!    explain the congested paths, pick the one most likely a priori. The
//!    exact problem is NP-complete, so, like CLINK, a greedy minimum-weight
//!    set cover with weights `ln((1 − p_e)/p_e)` is used.
//!
//! Both steps introduce inaccuracy when links are correlated, and the second
//! additionally approximates the per-interval state by the long-run
//! probability (the expected-value approximation the paper criticizes).

use tomo_graph::{LinkId, Network, PathId};
use tomo_prob::{
    AlgorithmAssumptions, Independence, IndependenceConfig, ProbabilityComputation,
    ProbabilityEstimate,
};
use tomo_sim::PathObservations;

use crate::map_solver::{greedy_weighted_cover, CandidateLinks};
use crate::BooleanInference;

/// Lower/upper clamp applied to learned probabilities before computing the
/// set-cover weights (avoids infinite weights for 0/1 probabilities).
const PROB_CLAMP: f64 = 1e-4;

/// The Bayesian-Independence (CLINK) inference algorithm.
#[derive(Clone, Debug, Default)]
pub struct BayesianIndependence {
    config: IndependenceConfig,
    estimate: Option<ProbabilityEstimate>,
}

impl BayesianIndependence {
    /// Creates the algorithm with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the algorithm with a custom Probability-Computation
    /// configuration.
    pub fn with_config(config: IndependenceConfig) -> Self {
        Self {
            config,
            estimate: None,
        }
    }

    /// The learned probability estimate, if `learn` has run.
    pub fn estimate(&self) -> Option<&ProbabilityEstimate> {
        self.estimate.as_ref()
    }

    fn weight(&self, link: LinkId) -> f64 {
        let p = self
            .estimate
            .as_ref()
            .map(|e| e.link_congestion_probability(link))
            .unwrap_or(0.5)
            .clamp(PROB_CLAMP, 1.0 - PROB_CLAMP);
        ((1.0 - p) / p).ln()
    }
}

impl BooleanInference for BayesianIndependence {
    fn name(&self) -> &'static str {
        "Bayesian-Independence"
    }

    fn assumptions(&self) -> AlgorithmAssumptions {
        AlgorithmAssumptions::bayesian_independence()
    }

    fn computes_probabilities(&self) -> bool {
        true
    }

    fn probability_estimate(&self) -> Option<&ProbabilityEstimate> {
        self.estimate()
    }

    fn learn(&mut self, network: &Network, observations: &PathObservations) {
        let algo = Independence::new(self.config.clone());
        self.estimate = Some(algo.compute(network, observations));
    }

    fn infer_interval(&self, network: &Network, congested_paths: &[PathId]) -> Vec<LinkId> {
        let candidates = CandidateLinks::for_interval(network, congested_paths);
        greedy_weighted_cover(&candidates, |l| self.weight(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_all_intervals;
    use tomo_graph::toy::{fig1_case1, E1, E2, E3};

    /// Observations where e2 is the frequently congested link: p1 congested
    /// often, and occasionally e1 congests (making p1 and p2 congested).
    fn obs_e2_frequent(t: usize) -> PathObservations {
        let mut obs = PathObservations::new(3, t);
        for ti in 0..t {
            let e2_bad = ti % 2 == 0; // 50%
            let e1_bad = ti % 10 == 0; // 10%
            obs.set_congested(PathId(0), ti, e1_bad || e2_bad);
            obs.set_congested(PathId(1), ti, e1_bad);
            obs.set_congested(PathId(2), ti, false);
        }
        obs
    }

    #[test]
    fn uses_learned_probabilities_to_break_ambiguity() {
        let net = fig1_case1();
        let mut algo = BayesianIndependence::new();
        let obs = obs_e2_frequent(1000);
        algo.learn(&net, &obs);
        let est = algo.estimate().unwrap();
        assert!(est.link_congestion_probability(E2) > est.link_congestion_probability(E1));

        // Interval where only p1 is congested: both e1... no — e1 is on the
        // good path p2, so the only candidate is e2 regardless. Use the
        // ambiguous observation {p1, p2}: candidates are e1 (covers both) and
        // e2, e3 (cover one each). e1 has low probability (10%), so CLINK
        // must still prefer it only if its weight beats e2+e3; with
        // p_e2 ≈ 0.5 >> p_e1 ≈ 0.1, blaming e2 (and e3) is not cheaper than
        // blaming e1 alone... verify the algorithm picks a consistent cover.
        let inferred = algo.infer_interval(&net, &[PathId(0), PathId(1)]);
        assert!(!inferred.is_empty());
        // Whatever it picks must explain both congested paths.
        for p in [PathId(0), PathId(1)] {
            assert!(net.path(p).links.iter().any(|l| inferred.contains(l)));
        }
    }

    #[test]
    fn correlated_links_mislead_the_algorithm() {
        // §3.1: e2 and e3 perfectly correlated (both congested half the
        // time), e1 and e4 always good. The congested paths are then
        // {p1,p2,p3} in those intervals. Under the (wrong) independence
        // assumption the likeliest explanation involves e1; the truth is
        // {e2,e3}. The detection rate must therefore be below 1.
        let net = fig1_case1();
        let t = 600;
        let mut obs = PathObservations::new(3, t);
        for ti in 0..t {
            let bad = ti % 2 == 0;
            obs.set_congested(PathId(0), ti, bad);
            obs.set_congested(PathId(1), ti, bad);
            obs.set_congested(PathId(2), ti, bad);
        }
        let mut algo = BayesianIndependence::new();
        let inferred = infer_all_intervals(&mut algo, &net, &obs);
        let mut detected = 0usize;
        let mut total = 0usize;
        for (ti, links) in inferred.iter().enumerate() {
            if ti % 2 == 0 {
                total += 2;
                detected += [E2, E3].iter().filter(|l| links.contains(l)).count();
            }
        }
        let detection = detected as f64 / total as f64;
        assert!(
            detection < 0.95,
            "independence-based inference should stumble on correlated links, got {detection}"
        );
    }

    #[test]
    fn empty_interval_infers_nothing() {
        let net = fig1_case1();
        let mut algo = BayesianIndependence::new();
        algo.learn(&net, &obs_e2_frequent(100));
        assert!(algo.infer_interval(&net, &[]).is_empty());
    }

    #[test]
    fn metadata() {
        let algo = BayesianIndependence::new();
        assert_eq!(algo.name(), "Bayesian-Independence");
        assert!(algo.assumptions().independence);
        assert!(algo.assumptions().other_approximation);
    }
}
