//! Shared machinery of the Boolean Inference algorithms: candidate-link
//! pruning (Separability) and the greedy weighted set cover used as the
//! approximate MAP solver by the Bayesian algorithms.
//!
//! Picking the most likely explanation of an interval's observations is
//! NP-complete (the paper cites CLINK's reduction), so — exactly like CLINK —
//! the Bayesian algorithms here use a greedy minimum-weight set cover with
//! weights `w_e = ln((1 − p_e) / p_e)`: links with a high congestion
//! probability have a low (possibly negative) weight and are preferred. A
//! final pruning pass removes links made redundant by later picks.

use std::collections::{BTreeMap, BTreeSet};

use tomo_graph::{LinkId, Network, PathId};

/// The candidate links of one interval after applying Separability: links on
/// at least one congested path and on no good path.
#[derive(Clone, Debug)]
pub struct CandidateLinks {
    /// The candidate links.
    pub candidates: Vec<LinkId>,
    /// For each congested path, the candidate links that can explain it.
    pub coverage: BTreeMap<PathId, Vec<LinkId>>,
}

impl CandidateLinks {
    /// Computes the candidate links for one interval.
    ///
    /// Good paths are all paths not listed in `congested_paths`; every link
    /// on a good path is good (Assumption 1) and is excluded.
    pub fn for_interval(network: &Network, congested_paths: &[PathId]) -> Self {
        let congested: BTreeSet<PathId> = congested_paths.iter().copied().collect();
        let mut good_links: BTreeSet<LinkId> = BTreeSet::new();
        for p in network.path_ids() {
            if !congested.contains(&p) {
                good_links.extend(network.path(p).links.iter().copied());
            }
        }
        let mut candidates: BTreeSet<LinkId> = BTreeSet::new();
        let mut coverage: BTreeMap<PathId, Vec<LinkId>> = BTreeMap::new();
        for &p in &congested {
            let explaining: Vec<LinkId> = network
                .path(p)
                .links
                .iter()
                .copied()
                .filter(|l| !good_links.contains(l))
                .collect();
            candidates.extend(explaining.iter().copied());
            coverage.insert(p, explaining);
        }
        Self {
            candidates: candidates.into_iter().collect(),
            coverage,
        }
    }

    /// Congested paths that no candidate link can explain (possible only when
    /// the path observations are noisy, e.g. a probing false positive).
    pub fn unexplainable_paths(&self) -> Vec<PathId> {
        self.coverage
            .iter()
            .filter(|(_, links)| links.is_empty())
            .map(|(&p, _)| p)
            .collect()
    }
}

/// Greedy minimum-weight set cover.
///
/// `weight(l)` is the cost of declaring link `l` congested; congested paths
/// must each be covered by at least one chosen link. At every step the link
/// minimizing `weight / newly_covered` is chosen (ties broken by link id for
/// determinism). A pruning pass then removes chosen links whose covered paths
/// are all covered by other chosen links, starting from the heaviest.
pub fn greedy_weighted_cover(
    candidates: &CandidateLinks,
    mut weight: impl FnMut(LinkId) -> f64,
) -> Vec<LinkId> {
    let weights: BTreeMap<LinkId, f64> = candidates
        .candidates
        .iter()
        .map(|&l| (l, weight(l)))
        .collect();

    // Which paths each candidate link can explain.
    let mut link_paths: BTreeMap<LinkId, BTreeSet<PathId>> = BTreeMap::new();
    for (&p, links) in &candidates.coverage {
        for &l in links {
            link_paths.entry(l).or_default().insert(p);
        }
    }

    let mut uncovered: BTreeSet<PathId> = candidates
        .coverage
        .iter()
        .filter(|(_, links)| !links.is_empty())
        .map(|(&p, _)| p)
        .collect();
    let mut chosen: Vec<LinkId> = Vec::new();

    while !uncovered.is_empty() {
        let mut best: Option<(f64, LinkId, usize)> = None;
        for (&l, paths) in &link_paths {
            if chosen.contains(&l) {
                continue;
            }
            let newly = paths.intersection(&uncovered).count();
            if newly == 0 {
                continue;
            }
            let w = weights.get(&l).copied().unwrap_or(0.0);
            // Lower ratio is better; negative weights (very likely congested
            // links) are always attractive.
            let ratio = w / newly as f64;
            let better = match best {
                None => true,
                Some((best_ratio, best_link, _)) => {
                    ratio < best_ratio - 1e-12
                        || ((ratio - best_ratio).abs() <= 1e-12 && l < best_link)
                }
            };
            if better {
                best = Some((ratio, l, newly));
            }
        }
        let Some((_, link, _)) = best else {
            break; // remaining paths cannot be explained
        };
        chosen.push(link);
        if let Some(paths) = link_paths.get(&link) {
            for p in paths {
                uncovered.remove(p);
            }
        }
    }

    // Redundancy pruning: drop the heaviest links whose paths are all covered
    // by the rest of the selection.
    let mut pruned: Vec<LinkId> = chosen.clone();
    let mut by_weight: Vec<LinkId> = chosen;
    by_weight.sort_by(|a, b| {
        weights
            .get(b)
            .copied()
            .unwrap_or(0.0)
            .total_cmp(&weights.get(a).copied().unwrap_or(0.0))
    });
    for l in by_weight {
        let without: BTreeSet<LinkId> = pruned.iter().copied().filter(|&x| x != l).collect();
        let still_covered = candidates
            .coverage
            .iter()
            .filter(|(_, links)| !links.is_empty())
            .all(|(_, links)| links.iter().any(|x| without.contains(x)));
        // Only prune links with positive weight: a negative-weight link is
        // more likely congested than not, so keeping it is the MAP choice
        // even when it is redundant for covering.
        if still_covered && weights.get(&l).copied().unwrap_or(0.0) > 0.0 {
            pruned.retain(|&x| x != l);
        }
    }
    pruned.sort_unstable();
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::toy::{fig1_case1, E1, E2, E3, E4};

    #[test]
    fn candidates_respect_good_paths() {
        let net = fig1_case1();
        // Only p1 congested: p2, p3 good => e1, e3, e4 good => only e2 can
        // explain p1.
        let c = CandidateLinks::for_interval(&net, &[PathId(0)]);
        assert_eq!(c.candidates, vec![E2]);
        assert_eq!(c.coverage[&PathId(0)], vec![E2]);
        assert!(c.unexplainable_paths().is_empty());
    }

    #[test]
    fn all_paths_congested_keeps_all_links() {
        let net = fig1_case1();
        let c = CandidateLinks::for_interval(&net, &[PathId(0), PathId(1), PathId(2)]);
        assert_eq!(c.candidates, vec![E1, E2, E3, E4]);
    }

    #[test]
    fn unexplainable_paths_are_reported() {
        let net = fig1_case1();
        // p1 congested but p2 good: e1 good (on p2), e2 explains p1. Now if
        // instead p2 is congested and p1 good: e1, e2 good via p1... e3 can
        // explain p2. Construct a genuinely unexplainable case: p1 congested,
        // p2 and p3 good makes e2 the only candidate — fine. For a path with
        // no candidate we need all its links on good paths: congested = {p2},
        // good = {p1, p3} => e1 (p1) and e3 (p3) good => p2 unexplainable.
        let c = CandidateLinks::for_interval(&net, &[PathId(1)]);
        assert_eq!(c.unexplainable_paths(), vec![PathId(1)]);
        assert!(c.candidates.is_empty());
    }

    #[test]
    fn greedy_cover_prefers_low_weight_links() {
        let net = fig1_case1();
        let c = CandidateLinks::for_interval(&net, &[PathId(0), PathId(1), PathId(2)]);
        // e1 covers p1,p2; e3 covers p2,p3. With uniform weights the greedy
        // cover is {e1, e3} (the Sparsity answer).
        let cover = greedy_weighted_cover(&c, |_| 1.0);
        assert_eq!(cover, vec![E1, E3]);
        // If e2 and e3 are much more likely congested (low weight), the cover
        // should use them and avoid blaming e1/e4.
        let cover = greedy_weighted_cover(&c, |l| match l {
            x if x == E2 || x == E3 => -2.0,
            _ => 3.0,
        });
        assert_eq!(cover, vec![E2, E3]);
    }

    #[test]
    fn cover_explains_every_explainable_path() {
        let net = fig1_case1();
        let c = CandidateLinks::for_interval(&net, &[PathId(0), PathId(2)]);
        let cover = greedy_weighted_cover(&c, |_| 1.0);
        for (p, links) in &c.coverage {
            if links.is_empty() {
                continue;
            }
            assert!(
                links.iter().any(|l| cover.contains(l)),
                "path {p} not explained by {cover:?}"
            );
        }
    }
}
