//! The *Bayesian-Correlation* Boolean Inference algorithm (developed for the
//! paper, §3.1).
//!
//! Like Bayesian-Independence it consists of a Probability Computation step
//! followed by per-interval Probabilistic Inference, but the first step
//! assumes Correlation Sets instead of Independence: it is the
//! Correlation-complete algorithm of §5, so joint good-probabilities of
//! correlated links are learned as their own quantities.
//!
//! The Probabilistic Inference step reuses the greedy weighted set cover, but
//! the weight of a candidate link is *conditioned on the links already chosen
//! from the same correlation set*: if `a` was already blamed and
//! `P(X_a = 1, X_b = 1)` is known, the weight of `b` uses
//! `P(X_b = 1 | X_a = 1)` instead of the marginal — this is how learning the
//! correlations pays off during inference. When a required joint probability
//! was not identifiable (Identifiability++ fails, §3.1 Case 2), the algorithm
//! falls back to the marginal, which, as the paper stresses, amounts to
//! guessing among equally likely explanations.

use std::collections::BTreeSet;

use tomo_graph::{LinkId, Network, PathId};
use tomo_prob::{
    AlgorithmAssumptions, CorrelationComplete, CorrelationCompleteConfig, ProbabilityComputation,
    ProbabilityEstimate,
};
use tomo_sim::PathObservations;

use crate::map_solver::CandidateLinks;
use crate::BooleanInference;

const PROB_CLAMP: f64 = 1e-4;

/// The Bayesian-Correlation inference algorithm.
#[derive(Clone, Debug, Default)]
pub struct BayesianCorrelation {
    config: CorrelationCompleteConfig,
    estimate: Option<ProbabilityEstimate>,
}

impl BayesianCorrelation {
    /// Creates the algorithm with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the algorithm with a custom Probability-Computation
    /// configuration.
    pub fn with_config(config: CorrelationCompleteConfig) -> Self {
        Self {
            config,
            estimate: None,
        }
    }

    /// The learned probability estimate, if `learn` has run.
    pub fn estimate(&self) -> Option<&ProbabilityEstimate> {
        self.estimate.as_ref()
    }

    /// Congestion probability of `link` conditioned on the already-chosen
    /// congested links of the same correlation set (falls back to the
    /// marginal when the joint is unavailable or not identifiable).
    fn conditional_probability(
        &self,
        network: &Network,
        link: LinkId,
        chosen: &BTreeSet<LinkId>,
    ) -> f64 {
        let Some(est) = self.estimate.as_ref() else {
            return 0.5;
        };
        let marginal = est.link_congestion_probability(link);
        let set_id = network.correlation_set_of(link);
        let chosen_same_set: Vec<LinkId> = chosen
            .iter()
            .copied()
            .filter(|&l| l != link && network.correlation_set_of(l) == set_id)
            .collect();
        if chosen_same_set.is_empty() {
            return marginal;
        }
        // P(link = 1 | chosen = 1) = P(link = 1, chosen = 1) / P(chosen = 1).
        let mut with_link = chosen_same_set.clone();
        with_link.push(link);
        let joint_with = est.subset_congestion_probability(&with_link);
        let joint_chosen = est.subset_congestion_probability(&chosen_same_set);
        match (joint_with, joint_chosen) {
            (Some(num), Some(den)) if den > 1e-9 => (num / den).clamp(0.0, 1.0),
            _ => marginal,
        }
    }
}

impl BooleanInference for BayesianCorrelation {
    fn name(&self) -> &'static str {
        "Bayesian-Correlation"
    }

    fn assumptions(&self) -> AlgorithmAssumptions {
        AlgorithmAssumptions::bayesian_correlation()
    }

    fn computes_probabilities(&self) -> bool {
        true
    }

    fn probability_estimate(&self) -> Option<&ProbabilityEstimate> {
        self.estimate()
    }

    fn learn(&mut self, network: &Network, observations: &PathObservations) {
        let algo = CorrelationComplete::new(self.config.clone());
        self.estimate = Some(algo.compute(network, observations));
    }

    fn infer_interval(&self, network: &Network, congested_paths: &[PathId]) -> Vec<LinkId> {
        let candidates = CandidateLinks::for_interval(network, congested_paths);

        // Greedy weighted cover with correlation-aware, sequentially updated
        // weights. (We cannot reuse `greedy_weighted_cover` directly because
        // the weight of a link changes as correlated links get chosen.)
        let mut uncovered: BTreeSet<PathId> = candidates
            .coverage
            .iter()
            .filter(|(_, links)| !links.is_empty())
            .map(|(&p, _)| p)
            .collect();
        let mut chosen: BTreeSet<LinkId> = BTreeSet::new();

        while !uncovered.is_empty() {
            let mut best: Option<(f64, LinkId)> = None;
            for &l in &candidates.candidates {
                if chosen.contains(&l) {
                    continue;
                }
                let newly = candidates
                    .coverage
                    .iter()
                    .filter(|(p, links)| uncovered.contains(p) && links.contains(&l))
                    .count();
                if newly == 0 {
                    continue;
                }
                let p = self
                    .conditional_probability(network, l, &chosen)
                    .clamp(PROB_CLAMP, 1.0 - PROB_CLAMP);
                let weight = ((1.0 - p) / p).ln();
                let ratio = weight / newly as f64;
                let better = match best {
                    None => true,
                    Some((best_ratio, best_link)) => {
                        ratio < best_ratio - 1e-12
                            || ((ratio - best_ratio).abs() <= 1e-12 && l < best_link)
                    }
                };
                if better {
                    best = Some((ratio, l));
                }
            }
            let Some((_, link)) = best else {
                break;
            };
            chosen.insert(link);
            uncovered.retain(|p| !candidates.coverage[p].contains(&link));
        }

        // Correlation completion: if a chosen link is (near-)perfectly
        // correlated with another candidate (their joint congestion
        // probability is close to both marginals), that other link is almost
        // surely congested too — add it. This captures the "links of the
        // same correlation group congest together" physics the probabilities
        // revealed, without affecting uncorrelated candidates.
        if let Some(est) = self.estimate.as_ref() {
            let snapshot: Vec<LinkId> = chosen.iter().copied().collect();
            for &c in &snapshot {
                for &other in &candidates.candidates {
                    if chosen.contains(&other)
                        || network.correlation_set_of(other) != network.correlation_set_of(c)
                    {
                        continue;
                    }
                    let p_other = est.link_congestion_probability(other);
                    if p_other < 0.05 {
                        continue;
                    }
                    if let Some(joint) = est.subset_congestion_probability(&[c, other]) {
                        let p_c = est.link_congestion_probability(c).max(PROB_CLAMP);
                        // P(other | c) close to 1 => congested together.
                        if joint / p_c > 0.9 {
                            chosen.insert(other);
                        }
                    }
                }
            }
        }

        chosen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_all_intervals;
    use tomo_graph::toy::{fig1_case1, E1, E2, E3, E4};

    /// e2 and e3 perfectly correlated, congested half of the time; e1 and e4
    /// always good — the scenario where Bayesian-Independence fails (§3.1).
    fn correlated_obs(t: usize) -> PathObservations {
        let mut obs = PathObservations::new(3, t);
        for ti in 0..t {
            let bad = ti % 2 == 0;
            obs.set_congested(PathId(0), ti, bad);
            obs.set_congested(PathId(1), ti, bad);
            obs.set_congested(PathId(2), ti, bad);
        }
        obs
    }

    #[test]
    fn correctly_blames_correlated_pair() {
        let net = fig1_case1();
        let mut algo = BayesianCorrelation::new();
        let obs = correlated_obs(800);
        let inferred = infer_all_intervals(&mut algo, &net, &obs);
        // In the congested intervals the truth is {e2, e3}; the
        // correlation-aware algorithm should recover both links most of the
        // time (unlike Bayesian-Independence, see its own tests).
        let mut detected = 0usize;
        let mut total = 0usize;
        let mut false_pos = 0usize;
        for (ti, links) in inferred.iter().enumerate() {
            if ti % 2 == 0 {
                total += 2;
                detected += [E2, E3].iter().filter(|l| links.contains(l)).count();
                false_pos += [E1, E4].iter().filter(|l| links.contains(l)).count();
            }
        }
        let detection = detected as f64 / total as f64;
        assert!(
            detection > 0.9,
            "correlation-aware inference should find both correlated links, got {detection}"
        );
        assert_eq!(false_pos, 0, "e1/e4 are exonerated by the probabilities");
    }

    #[test]
    fn learning_exposes_the_joint_probability() {
        let net = fig1_case1();
        let mut algo = BayesianCorrelation::new();
        algo.learn(&net, &correlated_obs(800));
        let est = algo.estimate().unwrap();
        let joint = est
            .subset_congestion_probability(&[E2, E3])
            .expect("pair is a target");
        assert!((joint - 0.5).abs() < 0.07, "joint = {joint}");
    }

    #[test]
    fn empty_interval_infers_nothing() {
        let net = fig1_case1();
        let mut algo = BayesianCorrelation::new();
        algo.learn(&net, &correlated_obs(100));
        assert!(algo.infer_interval(&net, &[]).is_empty());
    }

    #[test]
    fn metadata() {
        let algo = BayesianCorrelation::new();
        assert_eq!(algo.name(), "Bayesian-Correlation");
        let a = algo.assumptions();
        assert!(a.correlation_sets);
        assert!(a.identifiability_pp);
        assert!(!a.independence);
    }
}
