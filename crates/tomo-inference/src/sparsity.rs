//! The *Sparsity* Boolean Inference algorithm (called *Tomo* in
//! Dhamdhere et al., an adaptation of Duffield's tree algorithm to mesh
//! networks).
//!
//! Gist (§3.1 of the paper): a few congested links are responsible for many
//! congested paths, so — under the Homogeneity assumption — the algorithm
//! favors links that participate in many congested paths: it greedily picks
//! the candidate link covering the largest number of still-unexplained
//! congested paths until every congested path is explained.

use tomo_graph::{LinkId, Network, PathId};
use tomo_prob::AlgorithmAssumptions;
use tomo_sim::PathObservations;

use crate::map_solver::{greedy_weighted_cover, CandidateLinks};
use crate::BooleanInference;

/// The Sparsity inference algorithm.
#[derive(Clone, Debug, Default)]
pub struct Sparsity;

impl Sparsity {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Self
    }
}

impl BooleanInference for Sparsity {
    fn name(&self) -> &'static str {
        "Sparsity"
    }

    fn assumptions(&self) -> AlgorithmAssumptions {
        AlgorithmAssumptions::sparsity()
    }

    fn learn(&mut self, _network: &Network, _observations: &PathObservations) {
        // Sparsity has no learning phase: it treats every interval
        // independently and uses only that interval's observations.
    }

    fn infer_interval(&self, network: &Network, congested_paths: &[PathId]) -> Vec<LinkId> {
        let candidates = CandidateLinks::for_interval(network, congested_paths);
        // Uniform weights (Homogeneity): the greedy cover then maximizes the
        // number of newly covered congested paths at every step.
        greedy_weighted_cover(&candidates, |_| 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::toy::{fig1_case1, E1, E2, E3};

    #[test]
    fn picks_the_sparse_explanation_from_the_paper() {
        // §3.1: if the congested paths are {p1, p2, p3}, Sparsity infers
        // {e1, e3} because each participates in two congested paths.
        let net = fig1_case1();
        let algo = Sparsity::new();
        let inferred = algo.infer_interval(&net, &[PathId(0), PathId(1), PathId(2)]);
        assert_eq!(inferred, vec![E1, E3]);
    }

    #[test]
    fn misses_edge_congestion_as_described_in_the_paper() {
        // §3.1: if e2 and e3 are both congested, the congested paths are
        // {p1, p2, p3} and Sparsity still picks {e1, e3} — it misses e2 and
        // falsely blames e1.
        let net = fig1_case1();
        let algo = Sparsity::new();
        let inferred = algo.infer_interval(&net, &[PathId(0), PathId(1), PathId(2)]);
        let truth = [E2, E3];
        let missed: Vec<_> = truth.iter().filter(|l| !inferred.contains(l)).collect();
        let false_positives: Vec<_> = inferred.iter().filter(|l| !truth.contains(l)).collect();
        assert_eq!(missed, [&E2]);
        assert_eq!(false_positives, [&E1]);
    }

    #[test]
    fn respects_good_paths() {
        let net = fig1_case1();
        let algo = Sparsity::new();
        // Only p1 congested: p2 good exonerates e1, so the answer is e2.
        assert_eq!(algo.infer_interval(&net, &[PathId(0)]), vec![E2]);
        // Nothing congested: nothing inferred.
        assert!(algo.infer_interval(&net, &[]).is_empty());
    }

    #[test]
    fn metadata() {
        let mut algo = Sparsity::new();
        assert_eq!(algo.name(), "Sparsity");
        assert!(algo.assumptions().homogeneity);
        // learn() is a no-op but must be callable.
        let net = fig1_case1();
        let obs = PathObservations::new(3, 1);
        algo.learn(&net, &obs);
    }
}
