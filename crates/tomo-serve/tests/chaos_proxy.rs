//! Chaos-proxy framing integrity over real TCP: a daemon fed reordered and
//! duplicated request lines must never emit a torn or malformed response
//! line. The proxy only mutates the client → daemon direction, so every
//! framing defect observed on the response stream would be the daemon's
//! own — this is the wire-level contract the chaos drills rely on.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use tomo_chaos::{ChaosConfig, ChaosProxy};
use tomo_core::{SessionConfig, TomographySession};
use tomo_serve::protocol::{
    decode, encode, Request, RequestEnvelope, Response, ResponseEnvelope, PROTOCOL_VERSION,
};
use tomo_serve::{Client, EngineRegistry, RegistryConfig, Server, TenantId};

fn start_daemon() -> (String, std::thread::JoinHandle<()>) {
    let registry = EngineRegistry::new(RegistryConfig::default());
    let network = tomo_serve::resolve_topology("toy", 0).unwrap();
    let session = TomographySession::new(network, SessionConfig::default()).unwrap();
    registry
        .create(TenantId::new("default").unwrap(), session)
        .unwrap();
    let server = Server::bind("127.0.0.1:0", Arc::new(registry), 4).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle)
}

#[test]
fn reordering_and_duplication_never_corrupt_v2_framing() {
    let (addr, _handle) = start_daemon();
    let proxy = ChaosProxy::start(
        addr.clone(),
        ChaosConfig {
            seed: 42,
            reorder_rate: 0.3,
            dup_rate: 0.2,
            ..ChaosConfig::default()
        },
    )
    .unwrap();

    // Fire-and-forget one observation line per interval through the proxy.
    // The connection stays open for the whole exchange: the daemon sheds
    // pending work when a client disconnects, so closing the write half
    // early would race the responses away (a real chaos drill holds its
    // observation connection for the run, too).
    let stream = TcpStream::connect(proxy.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let total = 80usize;
    for t in 0..total {
        let envelope = RequestEnvelope {
            v: PROTOCOL_VERSION,
            tenant: Some("default".into()),
            deadline_ms: None,
            req: Request::ObserveBatch {
                intervals: vec![vec![t % 3]],
            },
        };
        writer
            .write_all(format!("{}\n", encode(&envelope)).as_bytes())
            .unwrap();
    }

    // Wait until the proxy's forwarding settles (a reordered final line
    // stays held back until more traffic or EOF — it is excused).
    let forwarded = {
        let mut last = proxy.counters().forwarded;
        loop {
            std::thread::sleep(std::time::Duration::from_millis(100));
            let now = proxy.counters().forwarded;
            if now == last {
                break now;
            }
            last = now;
        }
    };

    // Drain exactly one response per forwarded line; each must be a
    // well-formed v2 envelope even though requests arrived reordered and
    // duplicated.
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut accepted = 0u64;
    for _ in 0..forwarded {
        line.clear();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "daemon closed before answering every forwarded line"
        );
        let envelope: ResponseEnvelope = decode(&line).expect("well-formed response line");
        assert_eq!(envelope.v, PROTOCOL_VERSION);
        match envelope.resp {
            Response::Accepted { .. } => accepted += 1,
            Response::Busy { .. } => {}
            other => panic!("unexpected response under chaos: {other:?}"),
        }
    }

    let counters = proxy.counters();
    assert!(
        counters.reordered > 0 && counters.duplicated > 0,
        "chaos rates should have fired: {counters:?}"
    );
    assert_eq!(counters.dropped + counters.resets, 0);
    assert!(counters.forwarded > total as u64, "duplicates add lines");

    // A clean control connection sees exactly the accepted intervals:
    // duplicates are adversarial input, so they do count.
    let mut control = Client::connect(&addr).unwrap();
    control.set_tenant("default");
    control.flush().unwrap();
    let estimate = control.query().unwrap();
    assert_eq!(estimate.intervals, accepted);
    proxy.shutdown();
}
