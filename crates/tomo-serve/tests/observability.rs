//! End-to-end observability tests over real TCP: the fleet `Metrics`
//! report (per-tenant latency histograms, queue/shed/timeout counters,
//! network I/O counters) and the `deadline_ms` → `Timeout` contract.

use std::sync::Arc;

use tomo_core::{SessionConfig, TomographySession};
use tomo_serve::protocol::{AdmissionPolicy, ErrorKind, Request, Response};
use tomo_serve::stream::record_scenario;
use tomo_serve::{Client, EngineRegistry, RegistryConfig, Server, TenantId};
use tomo_sim::{MeasurementMode, ScenarioConfig};

/// Starts a daemon on an ephemeral loopback port with the given registry.
fn start_daemon(registry: EngineRegistry) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", Arc::new(registry), 4).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle)
}

/// A registry with one `default` tenant on the toy topology.
fn default_registry(config: RegistryConfig) -> EngineRegistry {
    let registry = EngineRegistry::new(config);
    let network = tomo_serve::resolve_topology("toy", 0).unwrap();
    let session = TomographySession::new(network, SessionConfig::default()).unwrap();
    registry
        .create(TenantId::new("default").unwrap(), session)
        .unwrap();
    registry
}

/// 200 intervals of the drifting-loss scenario on the toy topology.
fn toy_stream() -> Vec<Vec<usize>> {
    let network = tomo_serve::resolve_topology("toy", 0).unwrap();
    let mut scenario = ScenarioConfig::drifting_loss();
    scenario.congestible_fraction = 0.5;
    record_scenario(&network, scenario, 200, 11, MeasurementMode::Ideal)
        .into_iter()
        .map(|i| i.congested)
        .collect()
}

fn shutdown(client: &mut Client, handle: std::thread::JoinHandle<()>) {
    let _ = client.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn metrics_report_is_nonzero_and_quantiles_are_ordered() {
    let (addr, handle) = start_daemon(default_registry(RegistryConfig::default()));
    let mut client = Client::connect(&addr).unwrap();
    client.set_tenant("default");

    for chunk in toy_stream().chunks(10) {
        assert!(client.observe_batch(chunk.to_vec()).unwrap());
    }
    assert_eq!(client.flush().unwrap(), 200);
    client.query().unwrap();

    let report = client.metrics().unwrap();
    assert_eq!(report.total_intervals, 200);
    assert_eq!(report.busy_rejections, 0);
    assert_eq!(report.shed_batches, 0);
    assert_eq!(report.timeouts, 0);
    assert_eq!(report.per_tenant.len(), 1);

    let row = &report.per_tenant[0];
    assert_eq!(row.tenant, "default");
    assert_eq!(row.ingested_intervals, 200);
    assert_eq!(row.queue_depth, 0);
    assert_eq!(row.admission, AdmissionPolicy::Busy);
    // Every ingest drain and the one query were timed: histograms are
    // populated and the headline quantiles are ordered.
    assert!(row.ingest.count >= 1, "{row:?}");
    assert!(row.ingest.p50_ns > 0);
    assert!(row.ingest.p50_ns <= row.ingest.p95_ns);
    assert!(row.ingest.p95_ns <= row.ingest.p99_ns);
    // Quantiles are conservative bucket upper bounds, so the p99 may sit
    // just above the exact max — but never past the max's own bucket.
    let (_, max_bucket_hi) = tomo_metrics::histogram::bucket_bounds(
        tomo_metrics::histogram::bucket_index(row.ingest.max_ns),
    );
    assert!(row.ingest.p99_ns <= max_bucket_hi, "{row:?}");
    assert_eq!(row.query.count, 1);
    assert!(row.query.p50_ns > 0);
    assert!(row.query.p50_ns <= row.query.p99_ns);

    // The daemon's own I/O counters rode along: every request line above
    // was counted in, every response line counted out.
    let net = report
        .net
        .expect("server-side metrics include net counters");
    assert!(net.accepted >= 1, "{net:?}");
    assert!(net.lines_in >= 22, "{net:?}"); // 20 batches + flush + query
    assert!(net.lines_out >= net.lines_in - 1, "{net:?}");
    assert!(net.bytes_in > 0 && net.bytes_out > 0, "{net:?}");

    shutdown(&mut client, handle);
}

#[test]
fn expired_deadline_times_out_instead_of_executing() {
    let (addr, handle) = start_daemon(default_registry(RegistryConfig::default()));
    let mut client = Client::connect(&addr).unwrap();
    client.set_tenant("default");

    // A 0ms deadline is expired by the time the worker dequeues the
    // request — deterministically, with no sleeps in the test.
    client.set_deadline_ms(Some(0));
    match client.call(&Request::Query).unwrap() {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::Timeout);
            assert!(message.contains("deadline"), "{message}");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    // Stale ingest is also refused at the connection queue, before it can
    // reach the tenant's ingest queue.
    match client
        .call(&Request::ObserveBatch {
            intervals: vec![vec![0], vec![1]],
        })
        .unwrap()
    {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Timeout),
        other => panic!("expected Timeout, got {other:?}"),
    }

    // Clearing the deadline restores normal service on the same
    // connection, and the timeouts were charged to the tenant.
    client.set_deadline_ms(None);
    assert!(client.observe_batch(vec![vec![0]]).unwrap());
    assert_eq!(client.flush().unwrap(), 1);
    let stats = client.stats().unwrap();
    assert_eq!(stats.timeouts, 2);
    assert_eq!(stats.session.total_ingested, 1);
    let report = client.metrics().unwrap();
    assert_eq!(report.timeouts, 2);
    assert_eq!(report.total_intervals, 1);

    shutdown(&mut client, handle);
}

#[test]
fn shed_oldest_tenant_sheds_over_tcp_and_reports_it() {
    // Tiny queue so the shed path is reachable over the wire: the drainer
    // races us, so rather than asserting a specific shed count we assert
    // the invariant ingested + shed_intervals == sent.
    let registry = EngineRegistry::new(RegistryConfig {
        queue_bound: 1,
        default_admission: AdmissionPolicy::ShedOldest,
        ..RegistryConfig::default()
    });
    let (addr, handle) = start_daemon(registry);
    let mut client = Client::connect(&addr).unwrap();
    client.set_tenant("shed");
    client
        .create_tenant("shed", "toy", 0, "independence", None, None)
        .unwrap();

    let mut sent = 0u64;
    for chunk in toy_stream().chunks(5) {
        // Shed-oldest admission never answers Busy.
        assert!(client.observe_batch(chunk.to_vec()).unwrap());
        sent += chunk.len() as u64;
    }
    let ingested = client.flush().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.busy_rejections, 0);
    assert_eq!(ingested + stats.shed_intervals, sent);
    let report = client.metrics().unwrap();
    assert_eq!(report.per_tenant[0].admission, AdmissionPolicy::ShedOldest);
    assert_eq!(report.per_tenant[0].shed_batches, stats.shed_batches);

    shutdown(&mut client, handle);
}
