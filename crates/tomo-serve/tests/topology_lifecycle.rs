//! End-to-end tests of the topology lifecycle over real TCP: tenants
//! created from inline topology documents behave identically to tenants
//! created from the builtin generator names, uploaded topologies resolve
//! by name with canonical-hash dedup, `TopologyInfo` exposes alias sets,
//! and mid-stream topology drift is flagged (and, with `"rebuild":"auto"`,
//! triggers a structural rebuild) without a daemon restart.

use std::sync::Arc;

use tomo_core::RebuildPolicy;
use tomo_serve::protocol::{ErrorKind, Request, Response};
use tomo_serve::stream::record_scenario;
use tomo_serve::{Client, EngineRegistry, RegistryConfig, Server, TopologySource};
use tomo_sim::{MeasurementMode, ScenarioConfig};
use tomo_topo::{DriftKind, TopologyDoc};

fn start_daemon() -> (String, std::thread::JoinHandle<()>) {
    let registry = EngineRegistry::new(RegistryConfig::default());
    let server = Server::bind("127.0.0.1:0", Arc::new(registry), 4).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle)
}

fn shutdown(client: &mut Client, handle: std::thread::JoinHandle<()>) {
    assert!(matches!(
        client.call(&Request::Shutdown).unwrap(),
        Response::Bye
    ));
    handle.join().unwrap();
}

/// The acceptance criterion: a tenant created from an uploaded inline
/// `Network` document that mirrors a generator topology produces estimates
/// identical to the generator-created tenant on the same observation
/// stream, asserted over TCP.
#[test]
fn inline_created_tenant_matches_generator_created_tenant() {
    let (addr, handle) = start_daemon();

    let network = tomo_serve::resolve_topology("brite-tiny", 3).unwrap();
    let stream: Vec<Vec<usize>> = record_scenario(
        &network,
        ScenarioConfig::drifting_loss(),
        150,
        5,
        MeasurementMode::Ideal,
    )
    .into_iter()
    .map(|i| i.congested)
    .collect();

    let mut named = Client::connect(&addr).unwrap();
    named
        .create_tenant(
            "from-generator",
            "brite-tiny",
            3,
            "independence",
            None,
            None,
        )
        .unwrap();

    let mut inline = Client::connect(&addr).unwrap();
    let doc = TopologyDoc::from_network(network.clone());
    let (links, paths) = inline
        .create_tenant_from(
            "from-inline",
            TopologySource::Inline(doc),
            3,
            "independence",
            None,
            None,
            None,
        )
        .unwrap();
    assert_eq!(links, network.num_links());
    assert_eq!(paths, network.num_paths());

    for chunk in stream.chunks(10) {
        assert!(named.observe_batch(chunk.to_vec()).unwrap());
        assert!(inline.observe_batch(chunk.to_vec()).unwrap());
    }
    named.flush().unwrap();
    inline.flush().unwrap();

    let a = named.query().unwrap();
    let b = inline.query().unwrap();
    assert_eq!(a.intervals, 150);
    assert_eq!(b.intervals, 150);
    assert_eq!(
        a.probabilities, b.probabilities,
        "inline and generator tenants must estimate identically"
    );

    shutdown(&mut named, handle);
}

#[test]
fn uploaded_topologies_resolve_by_name_with_hash_dedup() {
    let (addr, handle) = start_daemon();
    let mut client = Client::connect(&addr).unwrap();

    let doc = TopologyDoc::from_network(tomo_graph::toy::fig1_case1());
    let (links, paths, hash) = client
        .upload_topology("measured-7018", doc.clone())
        .unwrap();
    assert_eq!((links, paths), (4, 3));
    assert!(hash.starts_with("fnv1a:"), "{hash}");

    // Idempotent re-upload: same structure, same hash, no error.
    let (_, _, hash_again) = client
        .upload_topology("measured-7018", doc.clone())
        .unwrap();
    assert_eq!(hash_again, hash);

    // A different structure under the taken name is a typed failure.
    let other = TopologyDoc::from_network(tomo_graph::toy::fig1_case2());
    assert!(client.upload_topology("measured-7018", other).is_err());

    // The uploaded name now resolves in Create, like a builtin.
    let (links, paths) = client
        .create_tenant("as-1", "measured-7018", 0, "independence", None, None)
        .unwrap();
    assert_eq!((links, paths), (4, 3));

    // Unknown names answer InvalidRequest listing builtin AND uploaded
    // names plus the inline-upload hint (the satellite fix).
    client.set_tenant("as-2");
    match client
        .call(&Request::Create {
            topology: TopologySource::Named("nope".into()),
            seed: None,
            estimator: None,
            window: None,
            decay: None,
            options: None,
            admission: None,
            rebuild: None,
        })
        .unwrap()
    {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::InvalidRequest);
            assert!(message.contains("toy"), "{message}");
            assert!(message.contains("measured-7018"), "{message}");
            assert!(message.contains("inline"), "{message}");
        }
        other => panic!("expected error, got {other:?}"),
    }

    shutdown(&mut client, handle);
}

/// The drift acceptance criterion: a mid-stream link appearance is flagged
/// by the drift monitor within the next ingested batch — no daemon
/// restart — and `"rebuild":"auto"` additionally triggers a structural
/// rebuild through the Algorithm-2 fold, visible in the refit counters.
#[test]
fn mid_stream_drift_is_flagged_and_auto_rebuilds() {
    let (addr, handle) = start_daemon();
    let mut client = Client::connect(&addr).unwrap();
    client
        .create_tenant_from(
            "drifty",
            TopologySource::Named("toy".into()),
            0,
            "independence",
            None,
            None,
            Some(RebuildPolicy::Auto),
        )
        .unwrap();

    // Phase 1: congestion confined to paths 0 and 1 primes the monitor.
    assert!(client.observe_batch(vec![vec![0, 1]; 10]).unwrap());
    client.flush().unwrap();
    let info = client.topology_info().unwrap();
    assert_eq!(info.rebuild, RebuildPolicy::Auto);
    assert_eq!(info.drift.total_events(), 0, "primed, no drift yet");
    // The toy topology's alias structure rides along: nullspace dim 1.
    assert_eq!(info.alias.nullspace_dim, 1);
    assert_eq!(info.alias.num_links, 4);

    let refits_before = client.stats().unwrap().session.refits.full;

    // Phase 2: path 2 starts congesting mid-stream — links that were
    // never active appear in the congested-path union.
    assert!(client.observe_batch(vec![vec![0, 1], vec![2]]).unwrap());
    client.flush().unwrap();

    let stats = client.stats().unwrap();
    assert!(
        stats.session.drift.links_appeared > 0,
        "drift not flagged: {:?}",
        stats.session.drift
    );
    assert!(
        stats.session.drift.auto_rebuilds > 0,
        "auto rebuild policy must rebuild on drift: {:?}",
        stats.session.drift
    );
    assert!(
        stats.session.refits.full > refits_before,
        "structural rebuild must show up as a full refit"
    );

    // The typed events surface through TopologyInfo, bounded to the
    // interval at which the drift was ingested (12 intervals in).
    let info = client.topology_info().unwrap();
    assert!(!info.recent_events.is_empty());
    let event = &info.recent_events[0];
    assert_eq!(event.kind, DriftKind::LinkAppeared);
    assert!(event.at_interval <= 12, "{}", event.at_interval);

    // Drift counters aggregate into the fleet view and the per-tenant
    // metrics rows.
    match client.call(&Request::FleetStats).unwrap() {
        Response::Fleet(fleet) => assert!(fleet.drift.links_appeared > 0),
        other => panic!("expected fleet stats, got {other:?}"),
    }
    let metrics = client.metrics().unwrap();
    let row = metrics
        .per_tenant
        .iter()
        .find(|r| r.tenant == "drifty")
        .unwrap();
    assert!(row.drift_links_appeared > 0);

    shutdown(&mut client, handle);
}
