//! Tests for the event-driven connection layer: typed overload rejection
//! at the accept limit, inline tenant restore (the handoff primitive), and
//! the C10K property itself — thread count stays flat as connections pile
//! up.

use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::sync::Arc;

use tomo_core::{SessionConfig, TomographySession};
use tomo_serve::protocol::{ErrorKind, Request, Response};
use tomo_serve::{Client, EngineRegistry, RegistryConfig, Server, TenantId};

/// A registry with one `default` tenant on the toy topology.
fn default_registry(config: RegistryConfig) -> EngineRegistry {
    let registry = EngineRegistry::new(config);
    let network = tomo_serve::resolve_topology("toy", 0).unwrap();
    let session = TomographySession::new(network, SessionConfig::default()).unwrap();
    registry
        .create(TenantId::new("default").unwrap(), session)
        .unwrap();
    registry
}

/// Current thread count of this process (Linux `/proc/self/status`).
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn accepts_beyond_max_conns_get_a_typed_overloaded_error() {
    let server = Server::bind_with_limit(
        "127.0.0.1:0",
        Arc::new(default_registry(RegistryConfig::default())),
        2,
        Some(2),
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));

    // Fill both slots and prove they work.
    let mut a = Client::connect(&addr).unwrap();
    a.set_tenant("default");
    let mut b = Client::connect(&addr).unwrap();
    b.set_tenant("default");
    assert!(matches!(
        a.call(&Request::Attach).unwrap(),
        Response::Attached { .. }
    ));
    assert!(matches!(
        b.call(&Request::Stats).unwrap(),
        Response::Stats(_)
    ));

    // The third connection is rejected with one typed envelope, then EOF —
    // never a silent drop.
    let rejected = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(rejected);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let envelope: tomo_serve::protocol::ResponseEnvelope =
        tomo_serve::protocol::decode(&line).unwrap();
    match envelope.resp {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::Overloaded);
            assert!(message.contains("max-conns"), "{message}");
        }
        other => panic!("expected Overloaded error, got {other:?}"),
    }
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "rejected conn must be closed after the line"
    );

    // Attached connections were untouched by the reject, and freeing a
    // slot readmits new clients.
    assert!(matches!(
        a.call(&Request::Stats).unwrap(),
        Response::Stats(_)
    ));
    drop(b);
    // The slot frees asynchronously; retry until the daemon readmits.
    let mut readmitted = None;
    for _ in 0..100 {
        let mut c = match Client::connect(&addr) {
            Ok(c) => c,
            Err(_) => continue,
        };
        c.set_tenant("default");
        if let Ok(Response::Stats(_)) = c.call(&Request::Stats) {
            readmitted = Some(c);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        readmitted.is_some(),
        "daemon never readmitted after a close"
    );

    assert!(matches!(a.call(&Request::Shutdown).unwrap(), Response::Bye));
    handle.join().unwrap();
}

#[test]
fn restore_creates_a_tenant_from_an_inline_snapshot() {
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(default_registry(RegistryConfig::default())),
        2,
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));

    let mut client = Client::connect(&addr).unwrap();
    client.set_tenant("default");
    let intervals: Vec<Vec<usize>> = (0..60)
        .map(|t| if t % 3 == 0 { vec![0, 1] } else { vec![] })
        .collect();
    assert!(client.observe_batch(intervals).unwrap());
    assert_eq!(client.flush().unwrap(), 60);
    let before = client.query().unwrap();

    // Serialize the session out of band (what a router reads from the
    // snapshot file during handoff) and restore it under a new id.
    let snapshot = {
        let network = tomo_serve::resolve_topology("toy", 0).unwrap();
        let session = TomographySession::new(network, SessionConfig::default()).unwrap();
        let registry = EngineRegistry::new(RegistryConfig::default());
        let entry = registry
            .create(TenantId::new("tmp").unwrap(), session)
            .unwrap();
        let congested: Vec<Vec<usize>> = (0..60)
            .map(|t| if t % 3 == 0 { vec![0, 1] } else { vec![] })
            .collect();
        registry.observe(&entry, congested);
        registry.flush(&entry);
        registry.snapshot_json(&entry).unwrap()
    };
    client.set_tenant("clone");
    match client
        .call(&Request::Restore {
            snapshot: snapshot.clone(),
        })
        .unwrap()
    {
        Response::Restored {
            links,
            paths,
            intervals,
        } => {
            assert_eq!(links, 4);
            assert_eq!(paths, 3);
            assert_eq!(intervals, 60);
        }
        other => panic!("expected Restored, got {other:?}"),
    }
    let after = client.query().unwrap();
    assert_eq!(after.intervals, before.intervals);
    for (a, b) in after.probabilities.iter().zip(&before.probabilities) {
        assert!((a - b).abs() < 1e-9);
    }

    // Restoring over an occupied id is a typed conflict.
    match client.call(&Request::Restore { snapshot }).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::TenantExists),
        other => panic!("expected TenantExists, got {other:?}"),
    }

    assert!(matches!(
        client.call(&Request::Shutdown).unwrap(),
        Response::Bye
    ));
    handle.join().unwrap();
}

#[test]
fn thread_count_stays_flat_as_connections_pile_up() {
    tomo_net::raise_nofile_limit(2048).ok();
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(default_registry(RegistryConfig::default())),
        4,
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));

    // Warm up: one round trip so the loop and pool threads all exist.
    let mut warm = Client::connect(&addr).unwrap();
    warm.set_tenant("default");
    warm.stats().unwrap();
    let baseline = thread_count();

    // 300 live connections, each exercised once. A thread-per-connection
    // server would add ~300 threads here; the event-driven one adds zero.
    let mut clients = Vec::new();
    for _ in 0..300 {
        let mut c = Client::connect(&addr).unwrap();
        c.set_tenant("default");
        c.stats().unwrap();
        clients.push(c);
    }
    let with_connections = thread_count();
    assert_eq!(
        with_connections, baseline,
        "thread count grew with connection count ({baseline} -> {with_connections})"
    );

    drop(clients);
    assert!(matches!(
        warm.call(&Request::Shutdown).unwrap(),
        Response::Bye
    ));
    handle.join().unwrap();
}
