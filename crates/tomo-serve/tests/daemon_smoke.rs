//! End-to-end daemon tests over real TCP: stream a simulated scenario into
//! a running server, verify queries match an offline batch fit, exercise
//! snapshot/restore, and shut the daemon down over the wire.

use tomo_core::{estimators, Refit};
use tomo_graph::LinkId;
use tomo_serve::protocol::{Request, Response};
use tomo_serve::stream::{record_scenario, stream_to_observations};
use tomo_serve::{Client, ServeConfig, ServeEngine, Server};
use tomo_sim::{MeasurementMode, ScenarioConfig};

/// Starts a daemon on an ephemeral loopback port, returning the address and
/// the thread running the accept loop.
fn start_daemon(config: ServeConfig) -> (String, std::thread::JoinHandle<()>) {
    let network = tomo_serve::resolve_topology("toy", 0).unwrap();
    let engine = ServeEngine::new(network, config).unwrap();
    let server = Server::bind("127.0.0.1:0", engine, 2).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle)
}

/// 200 intervals of the drifting-loss scenario on the toy topology.
fn toy_stream() -> Vec<Vec<usize>> {
    let network = tomo_serve::resolve_topology("toy", 0).unwrap();
    let mut scenario = ScenarioConfig::drifting_loss();
    scenario.congestible_fraction = 0.5;
    record_scenario(&network, scenario, 200, 11, MeasurementMode::Ideal)
        .into_iter()
        .map(|i| i.congested)
        .collect()
}

#[test]
fn replayed_stream_matches_offline_batch_fit() {
    let (addr, handle) = start_daemon(ServeConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    let stream = toy_stream();
    let mut refits = Vec::new();
    for chunk in stream.chunks(10) {
        let (refit, _) = client.observe_batch(chunk.to_vec()).unwrap();
        refits.push(refit);
    }
    // Steady state must ride the incremental path.
    assert!(refits.contains(&Refit::Incremental), "{refits:?}");

    let daemon = client.query().unwrap();

    // Offline: the same estimator on the full concatenated stream.
    let network = tomo_serve::resolve_topology("toy", 0).unwrap();
    let observations = stream_to_observations(
        &stream
            .iter()
            .map(|c| tomo_serve::stream::ObservedInterval {
                congested: c.clone(),
            })
            .collect::<Vec<_>>(),
        network.num_paths(),
    )
    .unwrap();
    let mut offline = estimators::by_name("independence").unwrap();
    offline.fit(&network, &observations).unwrap();
    let estimate = offline.estimate().unwrap();
    for (l, &got) in daemon.iter().enumerate() {
        let want = estimate.link_congestion_probability(LinkId(l));
        assert!(
            (want - got).abs() < 1e-5,
            "link {l}: offline {want} vs daemon {got}"
        );
    }

    // Stats reflect the ingestion pattern.
    match client.call(&Request::Stats).unwrap() {
        Response::StatsReport(stats) => {
            assert_eq!(stats.total_ingested, 200);
            assert!(stats.refits.incremental > 0);
            assert!(stats.refits.full >= 1);
        }
        other => panic!("expected stats, got {other:?}"),
    }

    let bye = client.call(&Request::Shutdown).unwrap();
    assert!(matches!(bye, Response::Bye));
    handle.join().unwrap();
}

#[test]
fn concurrent_clients_share_one_consistent_engine() {
    let (addr, handle) = start_daemon(ServeConfig::default());
    let stream = toy_stream();

    // Two writers split the stream; a reader polls in between.
    let (first, second) = stream.split_at(stream.len() / 2);
    let mut a = Client::connect(&addr).unwrap();
    let mut b = Client::connect(&addr).unwrap();
    for chunk in first.chunks(20) {
        a.observe_batch(chunk.to_vec()).unwrap();
    }
    for chunk in second.chunks(20) {
        b.observe_batch(chunk.to_vec()).unwrap();
    }
    // Close the writer connections so their server-side jobs finish —
    // `Server::run` drains live connections before returning.
    drop(a);
    drop(b);

    let mut reader = Client::connect(&addr).unwrap();
    match reader.call(&Request::Stats).unwrap() {
        Response::StatsReport(stats) => assert_eq!(stats.total_ingested, 200),
        other => panic!("expected stats, got {other:?}"),
    }
    assert_eq!(reader.query().unwrap().len(), 4);

    reader.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_lines_get_error_responses_and_the_connection_survives() {
    let (addr, handle) = start_daemon(ServeConfig::default());

    // Talk to the daemon at the raw socket level.
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    writeln!(writer, "this is not json").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("Error"), "{line}");

    // The same connection still serves valid requests afterwards.
    writeln!(writer, "{{\"Observe\": {{\"congested\": [0]}}}}").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("Ack"), "{line}");

    writeln!(writer, "\"Shutdown\"").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("Bye"), "{line}");
    handle.join().unwrap();
}

#[test]
fn shutdown_completes_even_with_an_idle_connection_open() {
    let (addr, handle) = start_daemon(ServeConfig::default());
    // An idle client that never sends a byte must not block the drain:
    // connection reads poll the shutdown flag on a timeout.
    let _idle = std::net::TcpStream::connect(&addr).unwrap();
    let mut client = Client::connect(&addr).unwrap();
    client.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn snapshot_over_the_wire_then_restore_into_a_new_daemon() {
    let snapshot_path = std::env::temp_dir()
        .join(format!("tomo-serve-smoke-{}.json", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let config = ServeConfig {
        snapshot_path: Some(snapshot_path.clone()),
        window_capacity: Some(120),
        ..ServeConfig::default()
    };
    let (addr, handle) = start_daemon(config);
    let mut client = Client::connect(&addr).unwrap();
    for chunk in toy_stream().chunks(25) {
        client.observe_batch(chunk.to_vec()).unwrap();
    }
    match client.call(&Request::Snapshot).unwrap() {
        Response::Snapshotted { path } => assert_eq!(path, snapshot_path),
        other => panic!("expected snapshot ack, got {other:?}"),
    }
    let before = client.query().unwrap();
    client.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();

    // "Crash recovery": a brand-new daemon restored from the file serves
    // the same estimate.
    let mut restored = ServeEngine::restore_from_file(&snapshot_path).unwrap();
    match restored.handle(Request::Query) {
        Response::Estimate { probabilities, .. } => {
            assert_eq!(probabilities.len(), before.len());
            // The pre-crash estimate may come from the incremental solver
            // and the restored one from a full refit; they agree to solver
            // tolerance.
            for (x, y) in probabilities.iter().zip(&before) {
                assert!((x - y).abs() < 1e-6, "{probabilities:?} vs {before:?}");
            }
        }
        other => panic!("expected estimate, got {other:?}"),
    }
    let _ = std::fs::remove_file(&snapshot_path);
}
