//! End-to-end daemon tests over real TCP: stream a simulated scenario into
//! a running v2 server, verify queries match an offline batch fit, exercise
//! snapshot/restore and the protocol's error taxonomy, and shut the daemon
//! down over the wire.

use std::sync::Arc;

use tomo_core::{estimators, SessionConfig, TomographySession};
use tomo_graph::LinkId;
use tomo_serve::protocol::{Request, Response};
use tomo_serve::stream::{record_scenario, stream_to_observations};
use tomo_serve::{Client, EngineRegistry, RegistryConfig, Server, TenantId};
use tomo_sim::{MeasurementMode, ScenarioConfig};

/// Starts a daemon on an ephemeral loopback port with the given registry,
/// returning the address and the accept-loop thread.
fn start_daemon(registry: EngineRegistry) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", Arc::new(registry), 4).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle)
}

/// A registry with one `default` tenant on the toy topology.
fn default_registry(config: RegistryConfig) -> EngineRegistry {
    let registry = EngineRegistry::new(config);
    let network = tomo_serve::resolve_topology("toy", 0).unwrap();
    let session = TomographySession::new(network, SessionConfig::default()).unwrap();
    registry
        .create(TenantId::new("default").unwrap(), session)
        .unwrap();
    registry
}

/// 200 intervals of the drifting-loss scenario on the toy topology.
fn toy_stream() -> Vec<Vec<usize>> {
    let network = tomo_serve::resolve_topology("toy", 0).unwrap();
    let mut scenario = ScenarioConfig::drifting_loss();
    scenario.congestible_fraction = 0.5;
    record_scenario(&network, scenario, 200, 11, MeasurementMode::Ideal)
        .into_iter()
        .map(|i| i.congested)
        .collect()
}

#[test]
fn replayed_stream_matches_offline_batch_fit() {
    let (addr, handle) = start_daemon(default_registry(RegistryConfig::default()));
    let mut client = Client::connect(&addr).unwrap();
    client.set_tenant("default");

    let stream = toy_stream();
    for chunk in stream.chunks(10) {
        assert!(client.observe_batch(chunk.to_vec()).unwrap());
    }
    // Flush is the barrier that makes the following query reflect
    // everything accepted above.
    assert_eq!(client.flush().unwrap(), 200);
    let daemon = client.query().unwrap();
    assert_eq!(daemon.intervals, 200);

    // Offline: the same estimator on the full concatenated stream.
    let network = tomo_serve::resolve_topology("toy", 0).unwrap();
    let observations = stream_to_observations(
        &stream
            .iter()
            .map(|c| tomo_serve::stream::ObservedInterval {
                congested: c.clone(),
            })
            .collect::<Vec<_>>(),
        network.num_paths(),
    )
    .unwrap();
    let mut offline = estimators::by_name("independence").unwrap();
    offline.fit(&network, &observations).unwrap();
    let estimate = offline.estimate().unwrap();
    for (l, &got) in daemon.probabilities.iter().enumerate() {
        let want = estimate.link_congestion_probability(LinkId(l));
        assert!(
            (want - got).abs() < 1e-5,
            "link {l}: offline {want} vs daemon {got}"
        );
    }

    // Stats reflect the ingestion pattern, including the incremental path.
    let stats = client.stats().unwrap();
    assert_eq!(stats.session.total_ingested, 200);
    assert!(stats.session.refits.incremental > 0);
    assert!(stats.session.refits.full >= 1);
    assert_eq!(stats.busy_rejections, 0);

    let bye = client.call(&Request::Shutdown).unwrap();
    assert!(matches!(bye, Response::Bye));
    handle.join().unwrap();
}

#[test]
fn concurrent_clients_share_one_consistent_tenant() {
    let (addr, handle) = start_daemon(default_registry(RegistryConfig::default()));
    let stream = toy_stream();

    // Two writers split the stream; attach binds the connection's default
    // tenant so the envelopes can omit it.
    let (first, second) = stream.split_at(stream.len() / 2);
    let mut a = Client::connect(&addr).unwrap();
    a.set_tenant("default");
    assert!(matches!(
        a.call(&Request::Attach).unwrap(),
        Response::Attached { links: 4, paths: 3 }
    ));
    let mut b = Client::connect(&addr).unwrap();
    b.set_tenant("default");
    for chunk in first.chunks(20) {
        a.observe_batch(chunk.to_vec()).unwrap();
    }
    for chunk in second.chunks(20) {
        b.observe_batch(chunk.to_vec()).unwrap();
    }
    a.flush().unwrap();
    b.flush().unwrap();
    drop(a);
    drop(b);

    let mut reader = Client::connect(&addr).unwrap();
    reader.set_tenant("default");
    assert_eq!(reader.stats().unwrap().session.total_ingested, 200);
    assert_eq!(reader.query().unwrap().probabilities.len(), 4);

    reader.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn protocol_taxonomy_over_the_wire() {
    let (addr, handle) = start_daemon(default_registry(RegistryConfig::default()));

    // Talk to the daemon at the raw socket level.
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut call = |line: &str| -> String {
        writeln!(writer, "{line}").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response
    };

    // Malformed JSON -> InvalidRequest, connection survives.
    let r = call("this is not json");
    assert!(r.contains("InvalidRequest"), "{r}");
    // v1 lines -> UnsupportedVersion with a migration hint.
    let r = call("\"Query\"");
    assert!(r.contains("UnsupportedVersion"), "{r}");
    let r = call("{\"Observe\": {\"congested\": [0]}}");
    assert!(r.contains("UnsupportedVersion"), "{r}");
    // Future versions -> UnsupportedVersion.
    let r = call("{\"v\": 9, \"tenant\": \"default\", \"req\": \"Query\"}");
    assert!(r.contains("UnsupportedVersion"), "{r}");
    // Unknown tenant -> UnknownTenant.
    let r = call("{\"v\": 2, \"tenant\": \"nope\", \"req\": \"Stats\"}");
    assert!(r.contains("UnknownTenant"), "{r}");
    // Missing tenant on a tenant-scoped request -> InvalidRequest.
    let r = call("{\"v\": 2, \"req\": \"Stats\"}");
    assert!(r.contains("InvalidRequest"), "{r}");
    // The same connection still serves valid requests afterwards.
    let r =
        call("{\"v\": 2, \"tenant\": \"default\", \"req\": {\"Observe\": {\"congested\": [0]}}}");
    assert!(r.contains("Accepted"), "{r}");
    // Inference on an estimator without the capability -> Unsupported.
    let r = call("{\"v\": 2, \"tenant\": \"default\", \"req\": {\"Infer\": {\"congested\": [0]}}}");
    assert!(r.contains("Unsupported"), "{r}");

    let r = call("{\"v\": 2, \"req\": \"Shutdown\"}");
    assert!(r.contains("Bye"), "{r}");
    handle.join().unwrap();
}

#[test]
fn shutdown_completes_even_with_an_idle_connection_open() {
    let (addr, handle) = start_daemon(default_registry(RegistryConfig::default()));
    // An idle client that never sends a byte must not block the drain:
    // connection reads poll the shutdown flag on a timeout.
    let _idle = std::net::TcpStream::connect(&addr).unwrap();
    let mut client = Client::connect(&addr).unwrap();
    client.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn snapshot_over_the_wire_then_restore_into_a_new_daemon() {
    let dir = std::env::temp_dir()
        .join(format!("tomo-serve-smoke-{}", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let config = RegistryConfig {
        snapshot_dir: Some(dir.clone()),
        ..RegistryConfig::default()
    };
    let (addr, handle) = start_daemon(default_registry(config.clone()));
    let mut client = Client::connect(&addr).unwrap();
    client.set_tenant("default");
    for chunk in toy_stream().chunks(25) {
        client.observe_batch(chunk.to_vec()).unwrap();
    }
    client.flush().unwrap();
    match client.call(&Request::Snapshot).unwrap() {
        Response::Snapshotted { path } => assert_eq!(path, format!("{dir}/default.json")),
        other => panic!("expected snapshot ack, got {other:?}"),
    }
    let before = client.query().unwrap();
    client.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();

    // "Crash recovery": a brand-new registry restored from the directory
    // serves the same estimate.
    let restored = EngineRegistry::new(config);
    assert_eq!(restored.restore_fleet(&dir).unwrap(), vec!["default"]);
    let entry = restored.lookup(&TenantId::new("default").unwrap()).unwrap();
    match restored.query(&entry) {
        Response::Estimate(after) => {
            assert_eq!(after.probabilities.len(), before.probabilities.len());
            // The pre-crash estimate may come from the incremental solver
            // and the restored one from a full refit; they agree to solver
            // tolerance.
            for (x, y) in after.probabilities.iter().zip(&before.probabilities) {
                assert!((x - y).abs() < 1e-6, "{after:?} vs {before:?}");
            }
        }
        other => panic!("expected estimate, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
