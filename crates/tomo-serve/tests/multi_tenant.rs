//! Multi-tenant integration tests over real TCP: one daemon process serves
//! several independently administered topologies on one port, flooding one
//! tenant degrades explicitly (`Busy`) without blocking another tenant's
//! queries, and a whole fleet snapshot/restore round-trips.

use std::sync::Arc;

use tomo_core::{estimators, TomoError};
use tomo_graph::LinkId;
use tomo_serve::protocol::{Request, Response};
use tomo_serve::stream::{record_scenario, stream_to_observations, ObservedInterval};
use tomo_serve::{Client, EngineRegistry, RegistryConfig, Server, TenantId};
use tomo_sim::{MeasurementMode, ScenarioConfig};

fn start_daemon(config: RegistryConfig, threads: usize) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(EngineRegistry::new(config)),
        threads,
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle)
}

/// Records a drifting-loss stream on a named topology.
fn stream_for(topology: &str, seed: u64, intervals: usize) -> Vec<Vec<usize>> {
    let network = tomo_serve::resolve_topology(topology, seed).unwrap();
    let mut scenario = ScenarioConfig::drifting_loss();
    scenario.congestible_fraction = 0.5;
    record_scenario(&network, scenario, intervals, seed, MeasurementMode::Ideal)
        .into_iter()
        .map(|i| i.congested)
        .collect()
}

/// Offline batch fit of `estimator` on a stream, as dense probabilities.
fn offline_fit(topology: &str, seed: u64, estimator: &str, stream: &[Vec<usize>]) -> Vec<f64> {
    let network = tomo_serve::resolve_topology(topology, seed).unwrap();
    let observations = stream_to_observations(
        &stream
            .iter()
            .map(|c| ObservedInterval {
                congested: c.clone(),
            })
            .collect::<Vec<_>>(),
        network.num_paths(),
    )
    .unwrap();
    let mut offline = estimators::by_name(estimator).unwrap();
    offline.fit(&network, &observations).unwrap();
    let estimate = offline.estimate().unwrap();
    (0..network.num_links())
        .map(|l| estimate.link_congestion_probability(LinkId(l)))
        .collect()
}

/// The acceptance-criteria scenario: one daemon, three tenants with
/// *distinct* topologies sharing one port, each matching its own offline
/// batch fit to 1e-3.
#[test]
fn three_tenants_with_distinct_topologies_on_one_port() {
    let (addr, handle) = start_daemon(RegistryConfig::default(), 6);

    let tenants = [
        ("as-toy", "toy", 0u64, "independence"),
        ("as-brite", "brite-tiny", 3u64, "independence"),
        ("as-sparse", "sparse-tiny", 5u64, "correlation-complete"),
    ];
    // Create all three over the wire, then interleave their streams through
    // separate connections (as independent monitors would).
    let mut clients: Vec<Client> = Vec::new();
    let mut streams: Vec<Vec<Vec<usize>>> = Vec::new();
    for (tenant, topology, seed, estimator) in tenants {
        let mut client = Client::connect(&addr).unwrap();
        client
            .create_tenant(tenant, topology, seed, estimator, None, None)
            .unwrap();
        streams.push(stream_for(topology, seed, 150));
        clients.push(client);
    }
    for chunk_index in 0..15 {
        for (client, stream) in clients.iter_mut().zip(&streams) {
            let chunk = stream[chunk_index * 10..(chunk_index + 1) * 10].to_vec();
            // Bounded queues: absorb Busy via flush-and-retry.
            while !client.observe_batch(chunk.clone()).unwrap() {
                client.flush().unwrap();
            }
        }
    }

    for ((tenant, topology, seed, estimator), (client, stream)) in
        tenants.iter().zip(clients.iter_mut().zip(&streams))
    {
        assert_eq!(client.flush().unwrap(), 150, "{tenant}");
        let daemon = client.query().unwrap();
        let offline = offline_fit(topology, *seed, estimator, stream);
        assert_eq!(daemon.probabilities.len(), offline.len(), "{tenant}");
        for (l, (got, want)) in daemon.probabilities.iter().zip(&offline).enumerate() {
            assert!(
                (got - want).abs() < 1e-3,
                "{tenant} link {l}: daemon {got} vs offline {want}"
            );
        }
    }

    // The fleet sees all three tenants.
    let mut any = Client::connect(&addr).unwrap();
    match any.call(&Request::ListTenants).unwrap() {
        Response::Tenants { tenants } => {
            let names: Vec<&str> = tenants.iter().map(|t| t.tenant.as_str()).collect();
            assert_eq!(names, vec!["as-brite", "as-sparse", "as-toy"]);
            assert!(tenants.iter().all(|t| t.intervals == 150));
        }
        other => panic!("{other:?}"),
    }
    match any.call(&Request::FleetStats).unwrap() {
        Response::Fleet(fleet) => {
            assert_eq!(fleet.tenants, 3);
            assert_eq!(fleet.total_ingested, 450);
            assert_eq!(fleet.shards, 8);
        }
        other => panic!("{other:?}"),
    }

    any.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

/// Backpressure: flooding one tenant past its ingest-queue bound yields
/// `Busy` responses, while a second tenant's queries keep being serviced
/// throughout the flood.
#[test]
fn flooding_one_tenant_does_not_block_another() {
    // A tiny queue bound and a slow (buffered, full-refit-per-batch)
    // estimator make the noisy tenant trivially floodable.
    let config = RegistryConfig {
        queue_bound: 2,
        ..RegistryConfig::default()
    };
    let (addr, handle) = start_daemon(config, 6);

    let mut admin = Client::connect(&addr).unwrap();
    admin
        .create_tenant("noisy", "brite-tiny", 3, "bayesian-correlation", None, None)
        .unwrap();
    admin
        .create_tenant("quiet", "toy", 0, "independence", None, None)
        .unwrap();

    // Warm the quiet tenant so queries have an estimate to answer.
    let quiet_stream = stream_for("toy", 0, 50);
    let mut quiet = Client::connect(&addr).unwrap();
    quiet.set_tenant("quiet");
    for chunk in quiet_stream.chunks(10) {
        quiet.observe_batch(chunk.to_vec()).unwrap();
    }
    quiet.flush().unwrap();

    // Flood the noisy tenant from three connections that never flush.
    let noisy_stream = Arc::new(stream_for("brite-tiny", 3, 400));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let busy_total = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut flooders = Vec::new();
    for f in 0..3 {
        let addr = addr.clone();
        let stream = Arc::clone(&noisy_stream);
        let stop = Arc::clone(&stop);
        let busy_total = Arc::clone(&busy_total);
        flooders.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            client.set_tenant("noisy");
            'outer: for _round in 0..50 {
                for chunk in stream.chunks(40).skip(f % 2) {
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        break 'outer;
                    }
                    match client.observe_batch(chunk.to_vec()) {
                        Ok(true) => {}
                        Ok(false) => {
                            busy_total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(TomoError::Io(_)) => break 'outer,
                        Err(e) => panic!("flooder failed: {e}"),
                    }
                }
            }
        }));
    }

    // While the flood runs, the quiet tenant must stay serviced: every
    // query round-trips with a correct-shaped answer.
    let mut served = 0u64;
    for _ in 0..200 {
        let estimate = quiet.query().expect("quiet tenant must stay serviced");
        assert_eq!(estimate.probabilities.len(), 4);
        assert_eq!(estimate.intervals, 50);
        served += 1;
        if busy_total.load(std::sync::atomic::Ordering::Relaxed) >= 5 && served >= 50 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for flooder in flooders {
        flooder.join().unwrap();
    }

    assert!(served >= 50, "quiet tenant served only {served} queries");
    let busy = busy_total.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        busy >= 5,
        "flood never hit the queue bound (busy rejections: {busy})"
    );
    // The daemon's own counters agree that backpressure engaged.
    let mut noisy_stats = Client::connect(&addr).unwrap();
    noisy_stats.set_tenant("noisy");
    let stats = noisy_stats.stats().unwrap();
    assert!(stats.busy_rejections >= busy, "{stats:?}");
    assert_eq!(stats.queue_bound, 2);
    assert_eq!(stats.ingest_errors, 0);

    noisy_stats.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

/// A 3-tenant fleet snapshot/restore round-trip: `SnapshotAll` over the
/// wire, then a fresh daemon restored from the directory serves identical
/// estimates for every tenant.
#[test]
fn fleet_snapshot_restore_round_trip_over_the_wire() {
    let dir = std::env::temp_dir()
        .join(format!("tomo-multi-snap-{}", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let config = RegistryConfig {
        snapshot_dir: Some(dir.clone()),
        ..RegistryConfig::default()
    };
    let (addr, handle) = start_daemon(config.clone(), 4);

    let tenants = [
        ("as-1", "toy", 0u64),
        ("as-2", "brite-tiny", 3u64),
        ("as-3", "toy", 7u64),
    ];
    let mut before = Vec::new();
    for (tenant, topology, seed) in tenants {
        let mut client = Client::connect(&addr).unwrap();
        client
            .create_tenant(tenant, topology, seed, "independence", Some(120), None)
            .unwrap();
        for chunk in stream_for(topology, seed, 140).chunks(20) {
            while !client.observe_batch(chunk.to_vec()).unwrap() {
                client.flush().unwrap();
            }
        }
        client.flush().unwrap();
        before.push(client.query().unwrap());
    }

    let mut admin = Client::connect(&addr).unwrap();
    match admin.call(&Request::SnapshotAll).unwrap() {
        Response::Snapshotted { path } => {
            for (tenant, _, _) in tenants {
                assert!(path.contains(&format!("{tenant}.json")), "{path}");
            }
        }
        other => panic!("{other:?}"),
    }
    admin.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();

    // A fresh daemon restores the whole fleet from the directory.
    let registry = EngineRegistry::new(config);
    let restored = registry.restore_fleet(&dir).unwrap();
    assert_eq!(restored, vec!["as-1", "as-2", "as-3"]);
    for ((tenant, _, _), expected) in tenants.iter().zip(&before) {
        let entry = registry.lookup(&TenantId::new(*tenant).unwrap()).unwrap();
        match registry.query(&entry) {
            Response::Estimate(after) => {
                // The window was bounded to 120 of 140 intervals; the
                // lifetime counter and the estimate both survive.
                assert_eq!(after.intervals, 140, "{tenant}");
                for (a, b) in after.probabilities.iter().zip(&expected.probabilities) {
                    assert!((a - b).abs() < 1e-6, "{tenant}: {after:?} vs {expected:?}");
                }
            }
            other => panic!("{other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
