//! The TCP front end: a `std::net` listener fanning connections onto the
//! `tomo-sweep` worker pool.
//!
//! Each accepted connection becomes one pool job that reads JSON-lines
//! requests until the client disconnects; every request is handled under
//! the shared engine mutex and answered with exactly one response line.
//! The accept loop polls a non-blocking listener so a `Shutdown` request
//! (observed via a shared flag) stops the daemon promptly without any
//! platform-specific socket tricks.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tomo_core::TomoError;
use tomo_sweep::WorkerPool;

use crate::engine::ServeEngine;
use crate::protocol::{decode, encode, Request, Response};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Read timeout on connections, so idle connections observe the shutdown
/// flag instead of blocking the drain forever.
const READ_POLL: Duration = Duration::from_millis(200);

/// The daemon: listener + engine + connection pool.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Mutex<ServeEngine>>,
    shutdown: Arc<AtomicBool>,
    pool: WorkerPool,
}

impl Server {
    /// Binds the daemon to `addr` (e.g. `127.0.0.1:7070`; port 0 picks an
    /// ephemeral port, see [`Server::local_addr`]).
    pub fn bind(addr: &str, engine: ServeEngine, threads: usize) -> Result<Self, TomoError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            engine: Arc::new(Mutex::new(engine)),
            shutdown: Arc::new(AtomicBool::new(false)),
            pool: WorkerPool::new(threads),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, TomoError> {
        Ok(self.listener.local_addr()?)
    }

    /// The shared shutdown flag; setting it stops the accept loop.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the accept loop until a client sends `Shutdown` (or the
    /// shutdown flag is raised externally). Existing connections are
    /// drained before returning.
    pub fn run(self) -> Result<(), TomoError> {
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let engine = Arc::clone(&self.engine);
                    let shutdown = Arc::clone(&self.shutdown);
                    self.pool
                        .submit(move || handle_connection(stream, &engine, &shutdown))?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e.into()),
            }
        }
        self.pool.wait_idle();
        Ok(())
    }
}

/// Serves one connection until EOF or shutdown.
fn handle_connection(stream: TcpStream, engine: &Mutex<ServeEngine>, shutdown: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    // A finite read timeout lets an idle connection notice the shutdown
    // flag; without it, `Server::run`'s drain would wait on clients that
    // never send another byte.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("tomo-serve: cannot clone connection: {e}");
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client went away
            Ok(_) => {}
            // Timeout (WouldBlock or TimedOut depending on the platform):
            // poll the shutdown flag and keep waiting. `line` keeps any
            // partial fragment read before the timeout; the next
            // `read_line` appends the rest of the line to it.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        let request_line = std::mem::take(&mut line);
        if request_line.trim().is_empty() {
            continue;
        }
        let response = match decode::<Request>(&request_line) {
            Ok(Request::Shutdown) => {
                let mut engine = engine.lock().expect("engine lock");
                let response = engine.handle(Request::Shutdown);
                shutdown.store(true, Ordering::Relaxed);
                response
            }
            Ok(request) => {
                let mut engine = engine.lock().expect("engine lock");
                engine.handle(request)
            }
            Err(e) => Response::from_error(&e),
        };
        let stop = matches!(response, Response::Bye);
        if writeln!(writer, "{}", encode(&response)).is_err() {
            break;
        }
        let _ = writer.flush();
        if stop {
            break;
        }
    }
}

/// A minimal synchronous client for the daemon protocol, used by the
/// `probe-client` binary and the integration tests.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: &str) -> Result<Self, TomoError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the matching response line.
    pub fn call(&mut self, request: &Request) -> Result<Response, TomoError> {
        writeln!(self.writer, "{}", encode(request))?;
        self.writer.flush()?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(TomoError::Io("daemon closed the connection".into()));
        }
        decode(&line)
    }

    /// Convenience: ingest a batch of intervals, returning the `Ack` fields
    /// `(refit, lifetime interval count)`.
    pub fn observe_batch(
        &mut self,
        intervals: Vec<Vec<usize>>,
    ) -> Result<(tomo_core::Refit, u64), TomoError> {
        match self.call(&Request::ObserveBatch { intervals })? {
            Response::Ack {
                refit, intervals, ..
            } => Ok((refit, intervals)),
            Response::Error { message } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Convenience: query the current per-link probabilities.
    pub fn query(&mut self) -> Result<Vec<f64>, TomoError> {
        match self.call(&Request::Query)? {
            Response::Estimate { probabilities, .. } => Ok(probabilities),
            Response::Error { message } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }
}
