//! The TCP front end: a `tomo-net` event loop feeding the `tomo-sweep`
//! worker pool, dispatching v2 envelopes to the sharded [`EngineRegistry`].
//!
//! The connection layer is event-driven (C10K): a **single I/O thread**
//! owns every socket through the readiness-polled
//! [`tomo_net::EventLoop`], so ten thousand mostly idle monitoring
//! sessions cost ten thousand file descriptors — not ten thousand
//! threads. Complete request lines are framed on the I/O thread and handed
//! to the fixed-size worker pool, which does only CPU work (parse,
//! dispatch, estimate) and queues each response back through the loop's
//! [`tomo_net::Sender`]. Total thread count is `1 + threads`, independent
//! of the connection count.
//!
//! Per-connection ordering is preserved without dedicating a worker per
//! connection: each connection keeps a queue of pending request lines and
//! at most one in-flight pool job drains it (the job that finds the queue
//! empty unflags itself; the next arriving line submits a fresh job) — the
//! same drain-on-first-enqueuer shape the registry uses for ingest.
//!
//! Wire semantics are unchanged from the thread-per-connection server:
//! every request line produces exactly one response line in order, `Attach`
//! binds a default tenant, ingest backpressure still answers `Busy`, and
//! `Shutdown` drains pending responses (the `Bye` is delivered) before the
//! daemon stops. One addition: a connection limit (`--max-conns`) rejects
//! surplus connections with a typed `Overloaded` error envelope instead of
//! accepting unboundedly.
//!
//! Observability and deadlines ride the same path: each pending line
//! carries its enqueue timestamp, and an envelope `deadline_ms` is checked
//! **at dequeue** — a request that sat in the connection queue past its
//! deadline answers a typed `Timeout` error without ever dispatching, so a
//! stalled worker pool sheds stale work instead of executing it late. The
//! fleet-level `Metrics` request snapshots the registry's per-tenant
//! instruments together with the event loop's I/O counters.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tomo_core::{SessionConfig, SessionEstimate, TomoError, TomographySession};
use tomo_net::{ConnId, EventLoop, NetConfig, NetCounters, Sender, Service};
use tomo_sweep::WorkerPool;

use crate::protocol::{
    decode, decode_request, encode, ErrorKind, MetricsReport, NetMetrics, Request, RequestEnvelope,
    Response, ResponseEnvelope, TenantStats, TopologyInfoReport, TopologySource, PROTOCOL_VERSION,
};
use crate::registry::{EngineRegistry, TenantId};

/// The daemon: event loop + sharded registry + CPU worker pool.
pub struct Server {
    event_loop: EventLoop,
    registry: Arc<EngineRegistry>,
    shutdown: Arc<AtomicBool>,
    pool: Arc<WorkerPool>,
}

impl Server {
    /// Binds the daemon to `addr` (e.g. `127.0.0.1:7070`; port 0 picks an
    /// ephemeral port, see [`Server::local_addr`]). `threads` sizes the CPU
    /// worker pool — connections are multiplexed on one I/O thread and do
    /// **not** occupy workers while idle.
    pub fn bind(
        addr: &str,
        registry: Arc<EngineRegistry>,
        threads: usize,
    ) -> Result<Self, TomoError> {
        Self::bind_with_limit(addr, registry, threads, None)
    }

    /// [`Server::bind`] with a connection limit: at most `max_conns` live
    /// connections; surplus accepts get one `Overloaded` error envelope
    /// and are closed.
    pub fn bind_with_limit(
        addr: &str,
        registry: Arc<EngineRegistry>,
        threads: usize,
        max_conns: Option<usize>,
    ) -> Result<Self, TomoError> {
        let config = NetConfig {
            max_conns,
            ..NetConfig::default()
        };
        let event_loop = EventLoop::bind(addr, config).map_err(TomoError::from)?;
        let shutdown = event_loop.shutdown_flag();
        Ok(Self {
            event_loop,
            registry,
            shutdown,
            pool: Arc::new(WorkerPool::new(threads)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, TomoError> {
        Ok(self.event_loop.local_addr()?)
    }

    /// The shared shutdown flag; setting it stops the daemon within one
    /// poll interval.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The registry the server dispatches to.
    pub fn registry(&self) -> &Arc<EngineRegistry> {
        &self.registry
    }

    /// Runs the event loop until a client sends `Shutdown` (or the
    /// shutdown flag is raised externally). Pending responses are drained
    /// before returning; every tenant is snapshotted on the way out when
    /// snapshotting is configured.
    pub fn run(self) -> Result<(), TomoError> {
        let Server {
            event_loop,
            registry,
            pool,
            ..
        } = self;
        let service = ServeService {
            registry: Arc::clone(&registry),
            pool: Arc::clone(&pool),
            sender: event_loop.sender(),
            shutdown: event_loop.shutdown_flag(),
            // Grabbed before `run` consumes the loop; workers read it when
            // serving fleet `Metrics`.
            net: event_loop.counters(),
            conns: Mutex::new(HashMap::new()),
        };
        event_loop.run(&service).map_err(TomoError::from)?;
        pool.wait_idle();
        registry.shutdown();
        Ok(())
    }
}

/// Per-connection state: the request queue feeding the worker pool and the
/// connection's tenant attachment.
struct ConnCtx {
    inner: Mutex<ConnInner>,
}

struct ConnInner {
    /// Request lines framed but not yet dispatched, oldest first, each
    /// stamped with its arrival time so `deadline_ms` is measured from
    /// when the request entered the queue (what the client experiences),
    /// not from when a worker happened to pick it up.
    pending: VecDeque<(String, Instant)>,
    /// Whether a pool job is currently draining `pending` (at most one per
    /// connection — this is what keeps responses in request order).
    processing: bool,
    /// The connection's default tenant, bound by `Attach`.
    attached: Option<TenantId>,
    /// The entry whose `live_conns` this connection currently counts
    /// toward (kept as the entry so the decrement works even after the
    /// tenant is dropped from the registry).
    counted: Option<Arc<crate::registry::TenantEntry>>,
    /// Set by `on_close`; late attachment updates must not re-increment.
    closed: bool,
}

/// The [`Service`] bridging the event loop to the registry.
struct ServeService {
    registry: Arc<EngineRegistry>,
    pool: Arc<WorkerPool>,
    sender: Sender,
    shutdown: Arc<AtomicBool>,
    net: Arc<NetCounters>,
    conns: Mutex<HashMap<ConnId, Arc<ConnCtx>>>,
}

impl Service for ServeService {
    fn on_open(&self, conn: ConnId, _peer: std::net::SocketAddr) {
        self.registry.conn_opened();
        self.conns.lock().expect("conn map lock").insert(
            conn,
            Arc::new(ConnCtx {
                inner: Mutex::new(ConnInner {
                    pending: VecDeque::new(),
                    processing: false,
                    attached: None,
                    counted: None,
                    closed: false,
                }),
            }),
        );
    }

    fn on_line(&self, conn: ConnId, line: String) {
        if line.trim().is_empty() {
            // Blank lines are ignored without a response (as before).
            return;
        }
        let Some(ctx) = self
            .conns
            .lock()
            .expect("conn map lock")
            .get(&conn)
            .cloned()
        else {
            return;
        };
        let submit = {
            let mut inner = ctx.inner.lock().expect("conn ctx lock");
            inner.pending.push_back((line, Instant::now()));
            if inner.processing {
                false
            } else {
                inner.processing = true;
                true
            }
        };
        if submit {
            let registry = Arc::clone(&self.registry);
            let sender = self.sender.clone();
            let shutdown = Arc::clone(&self.shutdown);
            let net = Arc::clone(&self.net);
            let job = move || drain_conn(&registry, &ctx, conn, &sender, &shutdown, &net);
            if let Err(e) = self.pool.submit(job) {
                eprintln!("tomo-serve: cannot schedule connection work: {e}");
            }
        }
    }

    fn on_close(&self, conn: ConnId) {
        self.registry.conn_closed();
        let ctx = self.conns.lock().expect("conn map lock").remove(&conn);
        if let Some(ctx) = ctx {
            let mut inner = ctx.inner.lock().expect("conn ctx lock");
            inner.closed = true;
            inner.pending.clear();
            if let Some(entry) = inner.counted.take() {
                entry.detach_conn();
            }
        }
    }

    fn overload_line(&self) -> Option<String> {
        Some(encode(&ResponseEnvelope::new(
            None,
            Response::error(
                ErrorKind::Overloaded,
                "connection limit reached (--max-conns); retry later or on another backend",
            ),
        )))
    }
}

/// Worker-pool job: drains one connection's pending request lines in
/// order, dispatching each and queueing the response back through the
/// event loop. Exactly one runs per connection at a time.
fn drain_conn(
    registry: &Arc<EngineRegistry>,
    ctx: &Arc<ConnCtx>,
    conn: ConnId,
    sender: &Sender,
    shutdown: &AtomicBool,
    net: &NetCounters,
) {
    loop {
        let (line, received, mut attached) = {
            let mut inner = ctx.inner.lock().expect("conn ctx lock");
            match inner.pending.pop_front() {
                Some((line, received)) => (line, received, inner.attached.clone()),
                None => {
                    inner.processing = false;
                    return;
                }
            }
        };
        let attached_before = attached.clone();
        let (tenant, response) = match decode_request(&line) {
            Ok(envelope) => {
                // Deadline check happens here, at dequeue: if the request
                // sat in the connection queue past its deadline, answer
                // `Timeout` without dispatching — stale work is never
                // executed.
                let expired = envelope
                    .deadline_ms
                    .is_some_and(|ms| received.elapsed().as_millis() as u64 >= ms);
                if expired {
                    timeout_response(registry, &envelope, attached.as_ref())
                } else {
                    dispatch(registry, envelope, received, &mut attached, shutdown, net)
                }
            }
            Err(error_response) => (None, *error_response),
        };
        if attached != attached_before {
            update_attachment(registry, ctx, attached);
        }
        let stop = matches!(response, Response::Bye);
        let envelope = ResponseEnvelope::new(tenant, response);
        if stop {
            sender.send_then_close(conn, encode(&envelope));
            // `Shutdown` already raised the flag; the queued `Bye` wakes
            // the loop, which drains pending writes and exits.
        } else {
            sender.send(conn, encode(&envelope));
        }
    }
}

/// Applies an attachment change to the connection's live-conn accounting:
/// the previously counted tenant loses this connection, the newly attached
/// one (if it still exists and the connection is still open) gains it.
fn update_attachment(
    registry: &Arc<EngineRegistry>,
    ctx: &Arc<ConnCtx>,
    attached: Option<TenantId>,
) {
    let entry = attached.as_ref().and_then(|id| registry.lookup(id));
    let mut inner = ctx.inner.lock().expect("conn ctx lock");
    inner.attached = attached;
    if let Some(old) = inner.counted.take() {
        old.detach_conn();
    }
    if !inner.closed {
        if let Some(entry) = entry {
            entry.attach_conn();
            inner.counted = Some(entry);
        }
    }
}

/// Builds the `Timeout` error for a request whose deadline expired while
/// it waited in the connection queue, charging the timeout to the tenant's
/// instruments when the envelope (or attachment) names one that exists.
fn timeout_response(
    registry: &Arc<EngineRegistry>,
    envelope: &RequestEnvelope,
    attached: Option<&TenantId>,
) -> (Option<String>, Response) {
    let echo = envelope
        .tenant
        .clone()
        .or_else(|| attached.map(|id| id.as_str().to_string()));
    let entry = echo
        .as_deref()
        .and_then(|id| TenantId::new(id.to_string()).ok())
        .and_then(|id| registry.lookup(&id));
    match entry {
        Some(entry) => registry.record_timeout(&entry),
        None => registry.record_anonymous_timeout(),
    }
    let deadline = envelope.deadline_ms.unwrap_or(0);
    (
        echo,
        Response::error(
            ErrorKind::Timeout,
            format!("deadline of {deadline}ms expired before the request was dequeued"),
        ),
    )
}

/// Converts the event loop's counter snapshot into the wire shape.
fn net_metrics(net: &NetCounters) -> NetMetrics {
    let snap = net.snapshot();
    NetMetrics {
        accepted: snap.accepted,
        rejected_overload: snap.rejected_overload,
        lines_in: snap.lines_in,
        lines_out: snap.lines_out,
        bytes_in: snap.bytes_in,
        bytes_out: snap.bytes_out,
    }
}

/// Handles one decoded envelope, returning the tenant to echo and the
/// response. `received` is when the request line entered the connection
/// queue; together with the envelope's `deadline_ms` it carries the
/// deadline through to queued ingest batches.
fn dispatch(
    registry: &Arc<EngineRegistry>,
    envelope: RequestEnvelope,
    received: Instant,
    attached: &mut Option<TenantId>,
    shutdown: &AtomicBool,
    net: &NetCounters,
) -> (Option<String>, Response) {
    let RequestEnvelope {
        tenant,
        deadline_ms,
        req,
        ..
    } = envelope;
    // Ingest batches inherit the request deadline: a batch still queued
    // when it expires is dropped at drain time (counted as a timeout)
    // rather than estimated late.
    let deadline = deadline_ms.and_then(|ms| received.checked_add(Duration::from_millis(ms)));

    // Fleet-level requests ignore the tenant field.
    match &req {
        Request::ListTenants => {
            return (
                None,
                Response::Tenants {
                    tenants: registry.list(),
                },
            )
        }
        Request::FleetStats => return (None, Response::Fleet(registry.fleet_stats())),
        Request::Metrics => {
            return (
                None,
                Response::Metrics(registry.metrics(Some(net_metrics(net)))),
            )
        }
        Request::SnapshotAll => {
            let written = registry.snapshot_all();
            return (
                None,
                Response::Snapshotted {
                    path: written.join(","),
                },
            );
        }
        Request::UploadTopology { name, topology } => {
            return (
                None,
                match registry.upload_topology(name, topology.clone()) {
                    Ok(report) => Response::TopologyAccepted {
                        name: name.trim().to_ascii_lowercase(),
                        links: report.links,
                        paths: report.paths,
                        hash: report.hash,
                    },
                    Err(e) => Response::from_error(&e),
                },
            )
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::Relaxed);
            return (None, Response::Bye);
        }
        _ => {}
    }

    // Everything else is tenant-scoped: resolve the explicit tenant or the
    // connection's attachment.
    let id =
        match tenant
            .map(TenantId::new)
            .or_else(|| attached.clone().map(Ok))
        {
            Some(Ok(id)) => id,
            Some(Err(e)) => return (None, Response::from_error(&e)),
            None => return (
                None,
                Response::error(
                    ErrorKind::InvalidRequest,
                    "request needs a tenant: set the envelope's `tenant` field or `Attach` first",
                ),
            ),
        };
    let echo = Some(id.as_str().to_string());

    let response = match req {
        Request::Create {
            topology,
            seed,
            estimator,
            window,
            decay,
            options,
            admission,
            rebuild,
        } => {
            let network = match registry.resolve_topology_source(&topology, seed.unwrap_or(0)) {
                Ok(network) => network,
                Err(e) => return (echo, Response::from_error(&e)),
            };
            let config = SessionConfig {
                estimator: estimator.unwrap_or_else(|| "independence".into()),
                options: options.unwrap_or_default(),
                window_capacity: window,
                decay,
                rebuild: rebuild.unwrap_or_default(),
            };
            let session = match TomographySession::new(network, config) {
                Ok(session) => session,
                Err(e) => return (echo, Response::from_error(&e)),
            };
            match registry.create_with_admission(id, session, admission) {
                Ok(entry) => Response::Created {
                    links: entry.num_links(),
                    paths: entry.num_paths(),
                },
                Err(e) => Response::error(ErrorKind::TenantExists, e.to_string()),
            }
        }
        Request::Restore { snapshot } => {
            if registry.lookup(&id).is_some() {
                Response::error(
                    ErrorKind::TenantExists,
                    format!("tenant `{id}` already exists; drop it before restoring"),
                )
            } else {
                match registry.restore_tenant(id, &snapshot) {
                    Ok(entry) => Response::Restored {
                        links: entry.num_links(),
                        paths: entry.num_paths(),
                        intervals: registry.stats(&entry).session.total_ingested,
                    },
                    Err(e) => Response::from_error(&e),
                }
            }
        }
        Request::Drop => match registry.drop_tenant(&id) {
            Ok(()) => {
                if attached.as_ref() == Some(&id) {
                    *attached = None;
                }
                Response::Dropped
            }
            Err(e) => Response::error(ErrorKind::UnknownTenant, e.to_string()),
        },
        other => {
            let Some(entry) = registry.lookup(&id) else {
                return (
                    echo,
                    Response::error(ErrorKind::UnknownTenant, format!("unknown tenant `{id}`")),
                );
            };
            match other {
                Request::Attach => {
                    *attached = Some(id.clone());
                    Response::Attached {
                        links: entry.num_links(),
                        paths: entry.num_paths(),
                    }
                }
                Request::Observe { congested } => {
                    registry.observe_deadline(&entry, vec![congested], deadline)
                }
                Request::ObserveBatch { intervals } => {
                    registry.observe_deadline(&entry, intervals, deadline)
                }
                Request::Flush => Response::Flushed {
                    intervals: registry.flush(&entry),
                },
                Request::Query => registry.query(&entry),
                Request::Infer { congested } => registry.infer(&entry, &congested),
                Request::Stats => Response::Stats(registry.stats(&entry)),
                Request::TopologyInfo => match registry.topology_info(&entry) {
                    Ok(info) => Response::Topology(info),
                    Err(e) => Response::from_error(&e),
                },
                Request::Snapshot => match registry.snapshot_tenant(&entry) {
                    Ok(Some(path)) => Response::Snapshotted { path },
                    Ok(None) => Response::error(
                        ErrorKind::InvalidRequest,
                        "no snapshot directory configured (start the daemon with --snapshot-dir)",
                    ),
                    Err(e) => Response::from_error(&e),
                },
                // Handled before tenant resolution.
                Request::Create { .. }
                | Request::Restore { .. }
                | Request::Drop
                | Request::ListTenants
                | Request::FleetStats
                | Request::Metrics
                | Request::SnapshotAll
                | Request::UploadTopology { .. }
                | Request::Shutdown => unreachable!("handled before tenant resolution"),
            }
        }
    };
    (echo, response)
}

/// A minimal synchronous v2 client for the daemon protocol, used by the
/// `probe-client` binary and the integration tests. The client tracks a
/// current tenant and stamps it into every envelope.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    tenant: Option<String>,
    deadline_ms: Option<u64>,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: &str) -> Result<Self, TomoError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            tenant: None,
            deadline_ms: None,
        })
    }

    /// Sets the tenant stamped into subsequent request envelopes.
    pub fn set_tenant(&mut self, tenant: impl Into<String>) {
        self.tenant = Some(tenant.into());
    }

    /// The tenant currently stamped into request envelopes.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Sets (or clears) the `deadline_ms` stamped into subsequent request
    /// envelopes. A request still queued server-side when its deadline
    /// expires answers a `Timeout` error instead of executing.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// Sends one request envelope and reads the matching response envelope,
    /// returning its `resp` field.
    pub fn call(&mut self, request: &Request) -> Result<Response, TomoError> {
        let envelope = RequestEnvelope {
            v: PROTOCOL_VERSION,
            tenant: self.tenant.clone(),
            deadline_ms: self.deadline_ms,
            req: request.clone(),
        };
        writeln!(self.writer, "{}", encode(&envelope))?;
        self.writer.flush()?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(TomoError::Io("daemon closed the connection".into()));
        }
        let envelope: ResponseEnvelope = decode(&line)?;
        Ok(envelope.resp)
    }

    /// Convenience: create a tenant with the given topology name and
    /// estimator (and set it as the client's current tenant).
    pub fn create_tenant(
        &mut self,
        tenant: impl Into<String>,
        topology: &str,
        seed: u64,
        estimator: &str,
        window: Option<usize>,
        decay: Option<f64>,
    ) -> Result<(usize, usize), TomoError> {
        self.create_tenant_from(
            tenant,
            TopologySource::Named(topology.into()),
            seed,
            estimator,
            window,
            decay,
            None,
        )
    }

    /// [`Client::create_tenant`] generalized over the topology source
    /// (named or inline document) and the rebuild-on-drift policy.
    #[allow(clippy::too_many_arguments)]
    pub fn create_tenant_from(
        &mut self,
        tenant: impl Into<String>,
        topology: TopologySource,
        seed: u64,
        estimator: &str,
        window: Option<usize>,
        decay: Option<f64>,
        rebuild: Option<tomo_core::RebuildPolicy>,
    ) -> Result<(usize, usize), TomoError> {
        self.set_tenant(tenant);
        match self.call(&Request::Create {
            topology,
            seed: Some(seed),
            estimator: Some(estimator.into()),
            window,
            decay,
            options: None,
            admission: None,
            rebuild,
        })? {
            Response::Created { links, paths } => Ok((links, paths)),
            Response::Error { message, .. } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Convenience: upload a validated topology document into the daemon's
    /// library under `name`, returning `(links, paths, hash)`.
    pub fn upload_topology(
        &mut self,
        name: &str,
        topology: tomo_topo::TopologyDoc,
    ) -> Result<(usize, usize, String), TomoError> {
        match self.call(&Request::UploadTopology {
            name: name.into(),
            topology,
        })? {
            Response::TopologyAccepted {
                links, paths, hash, ..
            } => Ok((links, paths, hash)),
            Response::Error { message, .. } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Convenience: fetch the tenant's topology lifecycle report (coverage,
    /// alias sets, rebuild policy, drift state).
    pub fn topology_info(&mut self) -> Result<TopologyInfoReport, TomoError> {
        match self.call(&Request::TopologyInfo)? {
            Response::Topology(info) => Ok(info),
            Response::Error { message, .. } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Convenience: enqueue a batch of intervals. `Ok(true)` when accepted,
    /// `Ok(false)` when the tenant's ingest queue was full (`Busy`).
    pub fn observe_batch(&mut self, intervals: Vec<Vec<usize>>) -> Result<bool, TomoError> {
        match self.call(&Request::ObserveBatch { intervals })? {
            Response::Accepted { .. } => Ok(true),
            Response::Busy { .. } => Ok(false),
            Response::Error { message, .. } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Convenience: block until the tenant's ingest queue drains, returning
    /// the lifetime interval count.
    pub fn flush(&mut self) -> Result<u64, TomoError> {
        match self.call(&Request::Flush)? {
            Response::Flushed { intervals } => Ok(intervals),
            Response::Error { message, .. } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Convenience: query the tenant's current estimate.
    pub fn query(&mut self) -> Result<SessionEstimate, TomoError> {
        match self.call(&Request::Query)? {
            Response::Estimate(estimate) => Ok(estimate),
            Response::Error { message, .. } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Convenience: fetch the tenant's statistics.
    pub fn stats(&mut self) -> Result<TenantStats, TomoError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error { message, .. } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Convenience: fetch the fleet-level metrics report (per-tenant
    /// latency histograms, queue depths, shed/timeout counters, and the
    /// daemon's network I/O counters).
    pub fn metrics(&mut self) -> Result<MetricsReport, TomoError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(report) => Ok(report),
            Response::Error { message, .. } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }
}
