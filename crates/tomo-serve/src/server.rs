//! The TCP front end: a `std::net` listener fanning connections onto the
//! `tomo-sweep` worker pool, dispatching v2 envelopes to the sharded
//! [`EngineRegistry`].
//!
//! Each accepted connection becomes one pool job that reads JSON-lines
//! request envelopes until the client disconnects; every request is
//! answered with exactly one response envelope, in order. A connection can
//! bind a default tenant with `Attach` and omit the `tenant` field
//! afterwards. Ingest requests only *enqueue* onto the tenant's bounded
//! queue (the first enqueuer drains it), so one flooding tenant cannot
//! occupy the engine while another tenant's queries wait — the flooder gets
//! `Busy` instead. The accept loop polls a non-blocking listener so a
//! `Shutdown` request (observed via a shared flag) stops the daemon
//! promptly without any platform-specific socket tricks.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tomo_core::{SessionConfig, SessionEstimate, TomoError, TomographySession};
use tomo_sweep::WorkerPool;

use crate::protocol::{
    decode, decode_request, encode, ErrorKind, Request, RequestEnvelope, Response,
    ResponseEnvelope, TenantStats, PROTOCOL_VERSION,
};
use crate::registry::{EngineRegistry, TenantId};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Read timeout on connections, so idle connections observe the shutdown
/// flag instead of blocking the drain forever.
const READ_POLL: Duration = Duration::from_millis(200);

/// The daemon: listener + sharded registry + connection pool.
pub struct Server {
    listener: TcpListener,
    registry: Arc<EngineRegistry>,
    shutdown: Arc<AtomicBool>,
    pool: WorkerPool,
}

impl Server {
    /// Binds the daemon to `addr` (e.g. `127.0.0.1:7070`; port 0 picks an
    /// ephemeral port, see [`Server::local_addr`]). `threads` sizes the
    /// connection pool — each live connection occupies one worker.
    pub fn bind(
        addr: &str,
        registry: Arc<EngineRegistry>,
        threads: usize,
    ) -> Result<Self, TomoError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            registry,
            shutdown: Arc::new(AtomicBool::new(false)),
            pool: WorkerPool::new(threads),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, TomoError> {
        Ok(self.listener.local_addr()?)
    }

    /// The shared shutdown flag; setting it stops the accept loop.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The registry the server dispatches to.
    pub fn registry(&self) -> &Arc<EngineRegistry> {
        &self.registry
    }

    /// Runs the accept loop until a client sends `Shutdown` (or the
    /// shutdown flag is raised externally). Existing connections are
    /// drained before returning; every tenant is snapshotted on the way
    /// out when snapshotting is configured.
    pub fn run(self) -> Result<(), TomoError> {
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let registry = Arc::clone(&self.registry);
                    let shutdown = Arc::clone(&self.shutdown);
                    self.pool
                        .submit(move || handle_connection(stream, &registry, &shutdown))?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e.into()),
            }
        }
        self.pool.wait_idle();
        self.registry.shutdown();
        Ok(())
    }
}

/// Serves one connection until EOF or shutdown.
fn handle_connection(stream: TcpStream, registry: &Arc<EngineRegistry>, shutdown: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    // A finite read timeout lets an idle connection notice the shutdown
    // flag; without it, `Server::run`'s drain would wait on clients that
    // never send another byte.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("tomo-serve: cannot clone connection: {e}");
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // The connection's default tenant, bound by `Attach`.
    let mut attached: Option<TenantId> = None;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client went away
            Ok(_) => {}
            // Timeout (WouldBlock or TimedOut depending on the platform):
            // poll the shutdown flag and keep waiting. `line` keeps any
            // partial fragment read before the timeout; the next
            // `read_line` appends the rest of the line to it.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        let request_line = std::mem::take(&mut line);
        if request_line.trim().is_empty() {
            continue;
        }
        let (tenant, response) = match decode_request(&request_line) {
            Ok(envelope) => dispatch(registry, envelope, &mut attached, shutdown),
            Err(error_response) => (None, *error_response),
        };
        let stop = matches!(response, Response::Bye);
        let envelope = ResponseEnvelope::new(tenant, response);
        if writeln!(writer, "{}", encode(&envelope)).is_err() {
            break;
        }
        let _ = writer.flush();
        if stop {
            break;
        }
    }
}

/// Handles one decoded envelope, returning the tenant to echo and the
/// response.
fn dispatch(
    registry: &Arc<EngineRegistry>,
    envelope: RequestEnvelope,
    attached: &mut Option<TenantId>,
    shutdown: &AtomicBool,
) -> (Option<String>, Response) {
    let RequestEnvelope { tenant, req, .. } = envelope;

    // Fleet-level requests ignore the tenant field.
    match &req {
        Request::ListTenants => {
            return (
                None,
                Response::Tenants {
                    tenants: registry.list(),
                },
            )
        }
        Request::FleetStats => return (None, Response::Fleet(registry.fleet_stats())),
        Request::SnapshotAll => {
            let written = registry.snapshot_all();
            return (
                None,
                Response::Snapshotted {
                    path: written.join(","),
                },
            );
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::Relaxed);
            return (None, Response::Bye);
        }
        _ => {}
    }

    // Everything else is tenant-scoped: resolve the explicit tenant or the
    // connection's attachment.
    let id =
        match tenant
            .map(TenantId::new)
            .or_else(|| attached.clone().map(Ok))
        {
            Some(Ok(id)) => id,
            Some(Err(e)) => return (None, Response::from_error(&e)),
            None => return (
                None,
                Response::error(
                    ErrorKind::InvalidRequest,
                    "request needs a tenant: set the envelope's `tenant` field or `Attach` first",
                ),
            ),
        };
    let echo = Some(id.as_str().to_string());

    let response = match req {
        Request::Create {
            topology,
            seed,
            estimator,
            window,
            decay,
            options,
        } => {
            let network = match crate::resolve_topology(&topology, seed.unwrap_or(0)) {
                Ok(network) => network,
                Err(e) => return (echo, Response::from_error(&e)),
            };
            let config = SessionConfig {
                estimator: estimator.unwrap_or_else(|| "independence".into()),
                options: options.unwrap_or_default(),
                window_capacity: window,
                decay,
            };
            let session = match TomographySession::new(network, config) {
                Ok(session) => session,
                Err(e) => return (echo, Response::from_error(&e)),
            };
            match registry.create(id, session) {
                Ok(entry) => Response::Created {
                    links: entry.num_links(),
                    paths: entry.num_paths(),
                },
                Err(e) => Response::error(ErrorKind::TenantExists, e.to_string()),
            }
        }
        Request::Drop => match registry.drop_tenant(&id) {
            Ok(()) => {
                if attached.as_ref() == Some(&id) {
                    *attached = None;
                }
                Response::Dropped
            }
            Err(e) => Response::error(ErrorKind::UnknownTenant, e.to_string()),
        },
        other => {
            let Some(entry) = registry.lookup(&id) else {
                return (
                    echo,
                    Response::error(ErrorKind::UnknownTenant, format!("unknown tenant `{id}`")),
                );
            };
            match other {
                Request::Attach => {
                    *attached = Some(id.clone());
                    Response::Attached {
                        links: entry.num_links(),
                        paths: entry.num_paths(),
                    }
                }
                Request::Observe { congested } => registry.observe(&entry, vec![congested]),
                Request::ObserveBatch { intervals } => registry.observe(&entry, intervals),
                Request::Flush => Response::Flushed {
                    intervals: registry.flush(&entry),
                },
                Request::Query => registry.query(&entry),
                Request::Infer { congested } => registry.infer(&entry, &congested),
                Request::Stats => Response::Stats(registry.stats(&entry)),
                Request::Snapshot => match registry.snapshot_tenant(&entry) {
                    Ok(Some(path)) => Response::Snapshotted { path },
                    Ok(None) => Response::error(
                        ErrorKind::InvalidRequest,
                        "no snapshot directory configured (start the daemon with --snapshot-dir)",
                    ),
                    Err(e) => Response::from_error(&e),
                },
                // Handled before tenant resolution.
                Request::Create { .. }
                | Request::Drop
                | Request::ListTenants
                | Request::FleetStats
                | Request::SnapshotAll
                | Request::Shutdown => unreachable!("handled before tenant resolution"),
            }
        }
    };
    (echo, response)
}

/// A minimal synchronous v2 client for the daemon protocol, used by the
/// `probe-client` binary and the integration tests. The client tracks a
/// current tenant and stamps it into every envelope.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    tenant: Option<String>,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: &str) -> Result<Self, TomoError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            tenant: None,
        })
    }

    /// Sets the tenant stamped into subsequent request envelopes.
    pub fn set_tenant(&mut self, tenant: impl Into<String>) {
        self.tenant = Some(tenant.into());
    }

    /// The tenant currently stamped into request envelopes.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Sends one request envelope and reads the matching response envelope,
    /// returning its `resp` field.
    pub fn call(&mut self, request: &Request) -> Result<Response, TomoError> {
        let envelope = RequestEnvelope {
            v: PROTOCOL_VERSION,
            tenant: self.tenant.clone(),
            req: request.clone(),
        };
        writeln!(self.writer, "{}", encode(&envelope))?;
        self.writer.flush()?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(TomoError::Io("daemon closed the connection".into()));
        }
        let envelope: ResponseEnvelope = decode(&line)?;
        Ok(envelope.resp)
    }

    /// Convenience: create a tenant with the given topology and estimator
    /// (and set it as the client's current tenant).
    pub fn create_tenant(
        &mut self,
        tenant: impl Into<String>,
        topology: &str,
        seed: u64,
        estimator: &str,
        window: Option<usize>,
        decay: Option<f64>,
    ) -> Result<(usize, usize), TomoError> {
        self.set_tenant(tenant);
        match self.call(&Request::Create {
            topology: topology.into(),
            seed: Some(seed),
            estimator: Some(estimator.into()),
            window,
            decay,
            options: None,
        })? {
            Response::Created { links, paths } => Ok((links, paths)),
            Response::Error { message, .. } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Convenience: enqueue a batch of intervals. `Ok(true)` when accepted,
    /// `Ok(false)` when the tenant's ingest queue was full (`Busy`).
    pub fn observe_batch(&mut self, intervals: Vec<Vec<usize>>) -> Result<bool, TomoError> {
        match self.call(&Request::ObserveBatch { intervals })? {
            Response::Accepted { .. } => Ok(true),
            Response::Busy { .. } => Ok(false),
            Response::Error { message, .. } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Convenience: block until the tenant's ingest queue drains, returning
    /// the lifetime interval count.
    pub fn flush(&mut self) -> Result<u64, TomoError> {
        match self.call(&Request::Flush)? {
            Response::Flushed { intervals } => Ok(intervals),
            Response::Error { message, .. } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Convenience: query the tenant's current estimate.
    pub fn query(&mut self) -> Result<SessionEstimate, TomoError> {
        match self.call(&Request::Query)? {
            Response::Estimate(estimate) => Ok(estimate),
            Response::Error { message, .. } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Convenience: fetch the tenant's statistics.
    pub fn stats(&mut self) -> Result<TenantStats, TomoError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error { message, .. } => Err(TomoError::InvalidConfig(message)),
            other => Err(TomoError::InvalidConfig(format!(
                "unexpected response {other:?}"
            ))),
        }
    }
}
