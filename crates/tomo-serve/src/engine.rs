//! The daemon's core: topology + online estimator + rolling window behind
//! one mutex, plus JSON snapshot/restore for crash recovery.

use tomo_core::online::{online_by_name, OnlineEstimator};
use tomo_core::{EstimatorOptions, TomoError};
use tomo_graph::{LinkId, Network, PathId};
use tomo_sim::PathObservations;

use serde::{Deserialize, Serialize};

use crate::protocol::{Request, Response, ServeStats};

/// Daemon configuration (everything except the topology).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Registry name of the serving estimator (`independence` gets the
    /// incremental path; every other name is buffered + fully refit).
    pub estimator: String,
    /// Estimator construction options (the §4 resource knobs).
    pub options: EstimatorOptions,
    /// Rolling-window capacity in intervals (`None` = unbounded).
    pub window_capacity: Option<usize>,
    /// Where snapshots are written (`None` disables snapshotting).
    pub snapshot_path: Option<String>,
    /// Automatically snapshot every `n` ingested intervals.
    pub snapshot_every: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            estimator: "independence".into(),
            options: EstimatorOptions::default(),
            window_capacity: None,
            snapshot_path: None,
            snapshot_every: None,
        }
    }
}

/// The persisted daemon state: everything needed to resume serving after a
/// crash. Estimates are *derived* state — the restore path re-ingests the
/// retained window, which reproduces them exactly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// The daemon configuration at snapshot time.
    pub config: ServeConfig,
    /// The served topology.
    pub network: Network,
    /// Retained intervals as sparse congested-path lists, oldest first.
    pub intervals: Vec<Vec<usize>>,
    /// Lifetime interval count at snapshot time (retained + evicted).
    pub total_ingested: u64,
}

/// The daemon engine: handles decoded [`Request`]s against the online
/// estimator. Connection handling wraps this in a `Mutex` (see
/// [`crate::server`]); the engine itself is single-threaded.
pub struct ServeEngine {
    network: Network,
    config: ServeConfig,
    online: Box<dyn OnlineEstimator + Send>,
    snapshots_written: u64,
    intervals_at_last_snapshot: u64,
}

impl ServeEngine {
    /// Creates an engine serving the given topology.
    pub fn new(network: Network, config: ServeConfig) -> Result<Self, TomoError> {
        let online = online_by_name(&config.estimator, &config.options, config.window_capacity)?;
        Ok(Self {
            network,
            config,
            online,
            snapshots_written: 0,
            intervals_at_last_snapshot: 0,
        })
    }

    /// Overrides where (and how often) snapshots are written — used after a
    /// restore so the operator's current invocation wins over the path and
    /// cadence embedded in the snapshot file.
    pub fn set_snapshot_config(&mut self, path: Option<String>, every: Option<u64>) {
        self.config.snapshot_path = path;
        self.config.snapshot_every = every;
    }

    /// The served topology.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The daemon configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Handles one request, returning the response to send back.
    pub fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Observe { congested } => self.observe(vec![congested]),
            Request::ObserveBatch { intervals } => self.observe(intervals),
            Request::Query => self.query(),
            Request::Infer { congested } => self.infer(&congested),
            Request::Stats => Response::StatsReport(self.stats()),
            Request::Snapshot => match self.write_snapshot() {
                Ok(Some(path)) => Response::Snapshotted { path },
                Ok(None) => Response::Error {
                    message: "no snapshot path configured".into(),
                },
                Err(e) => Response::from_error(&e),
            },
            Request::Shutdown => {
                // Best-effort final snapshot; shutdown proceeds regardless.
                let _ = self.write_snapshot();
                Response::Bye
            }
        }
    }

    /// Builds an ingest batch from per-interval congested-path lists,
    /// validating every path index.
    fn batch_from_intervals(
        &self,
        intervals: &[Vec<usize>],
    ) -> Result<PathObservations, TomoError> {
        let num_paths = self.network.num_paths();
        let mut batch = PathObservations::new(num_paths, intervals.len());
        for (t, congested) in intervals.iter().enumerate() {
            for &p in congested {
                if p >= num_paths {
                    return Err(TomoError::InvalidConfig(format!(
                        "path index {p} out of range (paths: {num_paths})"
                    )));
                }
                batch.set_congested(PathId(p), t, true);
            }
        }
        Ok(batch)
    }

    /// Ingests a batch of intervals given their congested-path lists.
    fn observe(&mut self, intervals: Vec<Vec<usize>>) -> Response {
        if intervals.is_empty() {
            return Response::Error {
                message: "empty observation batch".into(),
            };
        }
        let batch = match self.batch_from_intervals(&intervals) {
            Ok(batch) => batch,
            Err(e) => return Response::from_error(&e),
        };
        let ingested = intervals.len();
        match self.online.ingest(&self.network, &batch) {
            Ok(refit) => {
                let total = self.online.intervals_ingested();
                if let Some(every) = self.config.snapshot_every {
                    if total - self.intervals_at_last_snapshot >= every {
                        let _ = self.write_snapshot();
                    }
                }
                Response::Ack {
                    ingested,
                    refit,
                    intervals: total,
                }
            }
            Err(e) => Response::from_error(&e),
        }
    }

    /// The current per-link estimate.
    fn query(&self) -> Response {
        match self.online.estimate() {
            Some(estimate) => {
                let links = self.network.num_links();
                Response::Estimate {
                    probabilities: (0..links)
                        .map(|l| estimate.link_congestion_probability(LinkId(l)))
                        .collect(),
                    identifiable: (0..links)
                        .map(|l| estimate.link_is_identifiable(LinkId(l)))
                        .collect(),
                    intervals: self.online.intervals_ingested(),
                }
            }
            None => Response::Error {
                message: "no estimate yet: ingest observations first".into(),
            },
        }
    }

    /// Boolean inference for one interval's congested paths.
    fn infer(&self, congested: &[usize]) -> Response {
        let num_paths = self.network.num_paths();
        if let Some(&bad) = congested.iter().find(|&&p| p >= num_paths) {
            return Response::Error {
                message: format!("path index {bad} out of range (paths: {num_paths})"),
            };
        }
        let paths: Vec<PathId> = congested.iter().map(|&p| PathId(p)).collect();
        match self.online.infer_interval(&self.network, &paths) {
            Ok(links) => Response::Inferred {
                links: links.into_iter().map(|l| l.index()).collect(),
            },
            Err(e) => Response::from_error(&e),
        }
    }

    /// Current daemon statistics.
    pub fn stats(&self) -> ServeStats {
        let (window_len, total) = match self.online.window() {
            Some(w) => (w.len(), w.total_ingested()),
            None => (0, 0),
        };
        ServeStats {
            estimator: self.online.name().to_string(),
            links: self.network.num_links(),
            paths: self.network.num_paths(),
            window_len,
            window_capacity: self.config.window_capacity,
            total_ingested: total,
            refits: self.online.refit_counts(),
            snapshots_written: self.snapshots_written,
        }
    }

    /// Builds the in-memory snapshot of the current state.
    pub fn snapshot(&self) -> Snapshot {
        let (intervals, total) = match self.online.window() {
            Some(w) => (w.to_congested_sets(), w.total_ingested()),
            None => (Vec::new(), 0),
        };
        Snapshot {
            config: self.config.clone(),
            network: self.network.clone(),
            intervals,
            total_ingested: total,
        }
    }

    /// Writes a snapshot to the configured path; `Ok(None)` when
    /// snapshotting is disabled.
    pub fn write_snapshot(&mut self) -> Result<Option<String>, TomoError> {
        let Some(path) = self.config.snapshot_path.clone() else {
            return Ok(None);
        };
        let snapshot = self.snapshot();
        let json = serde_json::to_string(&snapshot).map_err(|e| TomoError::Serde(e.to_string()))?;
        // Write-then-rename so a crash mid-write never corrupts the last
        // good snapshot.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, &path)?;
        self.snapshots_written += 1;
        self.intervals_at_last_snapshot = self.online.intervals_ingested();
        Ok(Some(path))
    }

    /// Restores an engine from a snapshot: rebuilds the estimator and
    /// re-ingests the retained window, reproducing the pre-crash estimate
    /// exactly. The lifetime interval counter is restored from the
    /// snapshot; refit counters restart (they describe this process's
    /// work). The replay bypasses the auto-snapshot cadence so restoring
    /// never overwrites the file it is reading from.
    pub fn restore(snapshot: Snapshot) -> Result<Self, TomoError> {
        let mut engine = Self::new(snapshot.network, snapshot.config)?;
        if !snapshot.intervals.is_empty() {
            let batch = engine
                .batch_from_intervals(&snapshot.intervals)
                .map_err(|e| TomoError::InvalidConfig(format!("snapshot replay failed: {e}")))?;
            engine.online.ingest(&engine.network, &batch)?;
            engine
                .online
                .restore_total_ingested(snapshot.total_ingested);
            engine.intervals_at_last_snapshot = engine.online.intervals_ingested();
        }
        Ok(engine)
    }

    /// Restores an engine from a snapshot file written by
    /// [`ServeEngine::write_snapshot`].
    pub fn restore_from_file(path: &str) -> Result<Self, TomoError> {
        let text = std::fs::read_to_string(path)?;
        let snapshot: Snapshot =
            serde_json::from_str(&text).map_err(|e| TomoError::Serde(e.to_string()))?;
        Self::restore(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_core::Refit;
    use tomo_graph::toy;

    fn engine() -> ServeEngine {
        ServeEngine::new(toy::fig1_case1(), ServeConfig::default()).unwrap()
    }

    /// A deterministic batch: p1 and p2 congested on disjoint schedules.
    fn intervals(n: usize, offset: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|t| {
                let t = t + offset;
                let mut congested = Vec::new();
                if t.is_multiple_of(5) {
                    congested.push(0);
                    congested.push(1);
                }
                if t % 4 == 1 {
                    congested.push(2);
                }
                congested
            })
            .collect()
    }

    #[test]
    fn observe_then_query_round_trip() {
        let mut engine = engine();
        let ack = engine.handle(Request::ObserveBatch {
            intervals: intervals(40, 0),
        });
        assert!(
            matches!(
                ack,
                Response::Ack {
                    ingested: 40,
                    refit: Refit::Full,
                    intervals: 40
                }
            ),
            "{ack:?}"
        );
        let ack = engine.handle(Request::ObserveBatch {
            intervals: intervals(40, 40),
        });
        assert!(
            matches!(
                ack,
                Response::Ack {
                    refit: Refit::Incremental,
                    ..
                }
            ),
            "{ack:?}"
        );
        match engine.handle(Request::Query) {
            Response::Estimate {
                probabilities,
                identifiable,
                intervals,
            } => {
                assert_eq!(probabilities.len(), 4);
                assert_eq!(identifiable.len(), 4);
                assert_eq!(intervals, 80);
                assert!(probabilities.iter().all(|p| (0.0..=1.0).contains(p)));
                // e1 (shared by p1, p2) is congested ~20% of intervals.
                assert!((probabilities[0] - 0.2).abs() < 0.1, "{probabilities:?}");
            }
            other => panic!("expected estimate, got {other:?}"),
        }
    }

    #[test]
    fn query_before_observations_is_an_error() {
        let mut engine = engine();
        assert!(matches!(
            engine.handle(Request::Query),
            Response::Error { .. }
        ));
    }

    #[test]
    fn out_of_range_paths_are_rejected_without_state_change() {
        let mut engine = engine();
        let response = engine.handle(Request::Observe {
            congested: vec![99],
        });
        assert!(matches!(response, Response::Error { .. }), "{response:?}");
        assert_eq!(engine.stats().total_ingested, 0);
    }

    #[test]
    fn inference_capability_is_honored_per_estimator() {
        // Independence has no inference capability -> Error.
        let mut engine = engine();
        engine.handle(Request::ObserveBatch {
            intervals: intervals(20, 0),
        });
        assert!(matches!(
            engine.handle(Request::Infer { congested: vec![0] }),
            Response::Error { .. }
        ));
        // Sparsity (buffered) supports it.
        let config = ServeConfig {
            estimator: "sparsity".into(),
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(toy::fig1_case1(), config).unwrap();
        engine.handle(Request::ObserveBatch {
            intervals: intervals(20, 0),
        });
        match engine.handle(Request::Infer {
            congested: vec![0, 1],
        }) {
            Response::Inferred { links } => assert!(!links.is_empty()),
            other => panic!("expected inference, got {other:?}"),
        }
    }

    #[test]
    fn stats_track_ingestion_and_refits() {
        let mut engine = engine();
        engine.handle(Request::ObserveBatch {
            intervals: intervals(30, 0),
        });
        engine.handle(Request::ObserveBatch {
            intervals: intervals(30, 30),
        });
        let stats = engine.stats();
        assert_eq!(stats.estimator, "Online-Independence");
        assert_eq!(stats.total_ingested, 60);
        assert_eq!(stats.window_len, 60);
        assert_eq!(stats.refits.full, 1);
        assert_eq!(stats.refits.incremental, 1);
        assert_eq!(stats.links, 4);
        assert_eq!(stats.paths, 3);
    }

    #[test]
    fn snapshot_restore_reproduces_the_estimate() {
        let dir = std::env::temp_dir();
        let path = dir
            .join(format!("tomo-serve-test-{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let config = ServeConfig {
            snapshot_path: Some(path.clone()),
            window_capacity: Some(50),
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(toy::fig1_case1(), config).unwrap();
        engine.handle(Request::ObserveBatch {
            intervals: intervals(70, 0),
        });
        let written = match engine.handle(Request::Snapshot) {
            Response::Snapshotted { path } => path,
            other => panic!("expected snapshot ack, got {other:?}"),
        };
        let before = engine.handle(Request::Query);

        let mut restored = ServeEngine::restore_from_file(&written).unwrap();
        let after = restored.handle(Request::Query);
        match (&before, &after) {
            (
                Response::Estimate {
                    probabilities: a, ..
                },
                Response::Estimate {
                    probabilities: b, ..
                },
            ) => {
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-9, "before {a:?} after {b:?}");
                }
            }
            other => panic!("expected two estimates, got {other:?}"),
        }
        // The restored window keeps only the retained intervals, but the
        // lifetime counter survives the restore.
        let stats = restored.stats();
        assert_eq!(stats.window_len, 50);
        assert_eq!(stats.total_ingested, 70);
        let _ = std::fs::remove_file(&written);
    }

    #[test]
    fn auto_snapshot_fires_on_the_configured_cadence() {
        let dir = std::env::temp_dir();
        let path = dir
            .join(format!("tomo-serve-auto-{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let config = ServeConfig {
            snapshot_path: Some(path.clone()),
            snapshot_every: Some(25),
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(toy::fig1_case1(), config).unwrap();
        engine.handle(Request::ObserveBatch {
            intervals: intervals(10, 0),
        });
        assert_eq!(engine.stats().snapshots_written, 0);
        engine.handle(Request::ObserveBatch {
            intervals: intervals(20, 10),
        });
        assert_eq!(engine.stats().snapshots_written, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shutdown_writes_a_final_snapshot_when_configured() {
        let dir = std::env::temp_dir();
        let path = dir
            .join(format!("tomo-serve-bye-{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let config = ServeConfig {
            snapshot_path: Some(path.clone()),
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(toy::fig1_case1(), config).unwrap();
        engine.handle(Request::ObserveBatch {
            intervals: intervals(5, 0),
        });
        assert!(matches!(engine.handle(Request::Shutdown), Response::Bye));
        assert!(std::path::Path::new(&path).exists());
        let _ = std::fs::remove_file(&path);
    }
}
