//! Recording and replaying observation streams.
//!
//! An observation stream is a JSONL file with one line per measurement
//! interval, oldest first:
//!
//! ```text
//! {"congested": [pathIdx, ...]}
//! ```
//!
//! `probe-client gen` records one by simulating a scenario on a topology;
//! `probe-client replay` streams one into a running daemon. The same format
//! doubles as the daemon's ingest payload (each line becomes one interval
//! of an `ObserveBatch`).

use serde::{Deserialize, Serialize};
use tomo_core::{jsonl, TomoError};
use tomo_graph::{Network, PathId};
use tomo_sim::{MeasurementMode, PathObservations, ScenarioConfig, SimulationConfig, Simulator};

/// One recorded measurement interval.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedInterval {
    /// Dense indices of the congested paths.
    pub congested: Vec<usize>,
}

/// Simulates `intervals` intervals of a scenario on the network and returns
/// the per-interval congested-path records (ideal monitoring by default —
/// the daemon consumes path-level observations, not raw probes).
pub fn record_scenario(
    network: &Network,
    scenario: ScenarioConfig,
    intervals: usize,
    seed: u64,
    measurement: MeasurementMode,
) -> Vec<ObservedInterval> {
    let config = SimulationConfig {
        num_intervals: intervals,
        scenario,
        loss: tomo_sim::LossModel::default(),
        measurement,
        seed,
    };
    let output = Simulator::new(config).run(network);
    observations_to_stream(&output.observations)
}

/// Converts an observation matrix into the stream form.
pub fn observations_to_stream(observations: &PathObservations) -> Vec<ObservedInterval> {
    (0..observations.num_intervals())
        .map(|t| ObservedInterval {
            congested: observations
                .congested_paths(t)
                .into_iter()
                .map(|p| p.index())
                .collect(),
        })
        .collect()
}

/// Rebuilds an observation matrix from a stream (for offline batch fits).
pub fn stream_to_observations(
    stream: &[ObservedInterval],
    num_paths: usize,
) -> Result<PathObservations, TomoError> {
    let mut obs = PathObservations::new(num_paths, stream.len());
    for (t, interval) in stream.iter().enumerate() {
        for &p in &interval.congested {
            if p >= num_paths {
                return Err(TomoError::InvalidConfig(format!(
                    "stream interval {t} names path {p} but the topology has {num_paths} paths"
                )));
            }
            obs.set_congested(PathId(p), t, true);
        }
    }
    Ok(obs)
}

/// Renders a stream as JSONL text.
pub fn encode_stream(stream: &[ObservedInterval]) -> String {
    jsonl::encode_lines(stream)
}

/// Parses a JSONL stream file's contents.
pub fn decode_stream(text: &str) -> Result<Vec<ObservedInterval>, TomoError> {
    jsonl::decode_lines(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_sim::ScenarioKind;

    #[test]
    fn recorded_streams_round_trip_through_jsonl() {
        let net = crate::resolve_topology("toy", 0).unwrap();
        let mut scenario = ScenarioConfig::drifting_loss();
        scenario.congestible_fraction = 0.5;
        assert_eq!(scenario.kind, ScenarioKind::DriftingLoss);
        let stream = record_scenario(&net, scenario, 50, 7, MeasurementMode::Ideal);
        assert_eq!(stream.len(), 50);
        let text = encode_stream(&stream);
        let back = decode_stream(&text).unwrap();
        assert_eq!(back, stream);
        // And back into a matrix identical to the stream content.
        let obs = stream_to_observations(&back, net.num_paths()).unwrap();
        for (t, interval) in stream.iter().enumerate() {
            for p in 0..net.num_paths() {
                assert_eq!(
                    obs.is_congested(PathId(p), t),
                    interval.congested.contains(&p)
                );
            }
        }
    }

    #[test]
    fn streams_with_bad_path_indices_are_rejected() {
        let stream = vec![ObservedInterval { congested: vec![9] }];
        assert!(stream_to_observations(&stream, 3).is_err());
    }

    #[test]
    fn drifting_scenarios_actually_congest_something() {
        let net = crate::resolve_topology("brite-tiny", 3).unwrap();
        let stream = record_scenario(
            &net,
            ScenarioConfig::correlation_churn(),
            120,
            3,
            MeasurementMode::Ideal,
        );
        let congested_intervals = stream.iter().filter(|i| !i.congested.is_empty()).count();
        assert!(congested_intervals > 0, "dead stream");
    }
}
