//! The sharded multi-tenant engine registry.
//!
//! One daemon process serves a fleet of independently administered
//! topologies: each tenant owns a [`TomographySession`] behind its own
//! lock, tenants are distributed over hash-selected *shards* (so tenant
//! lookup never contends on one global map lock), and every tenant carries
//! a **bounded ingest queue** — `Observe` traffic enqueues and returns
//! immediately, a single drainer folds queued batches into the session,
//! and once the queue is full further observes are rejected with `Busy`
//! instead of queueing unboundedly on the socket — or, for tenants created
//! with the `ShedOldest` admission policy, the oldest queued batch is
//! dropped to make room (freshness over completeness, every drop counted).
//!
//! Every tenant also carries lock-free [`Instruments`] (outside its
//! mutexes): the drainer records per-batch ingest latency, the read path
//! records query latency, and admission events (sheds, expired deadlines)
//! bump relaxed counters — the numbers behind the `Metrics` response.
//! Queued batches remember their request deadline; the drainer discards
//! batches whose deadline passed while they waited instead of folding
//! stale data into the session.
//!
//! Locking discipline (deadlock-free by construction):
//!
//! * a shard's map mutex is only held for lookup / insert / remove — never
//!   while a tenant lock is taken;
//! * a tenant's queue mutex and state (session) mutex are never held at
//!   the same time: the drainer pops under the queue lock, releases it,
//!   then ingests under the state lock;
//! * `Flush` waits on the queue condvar, which releases the queue lock
//!   while blocked.
//!
//! Snapshots are per-tenant files `<dir>/<tenant>.json` written atomically
//! (write-to-temp, then rename), so a crash mid-write never corrupts the
//! last good snapshot; [`EngineRegistry::restore_fleet`] reloads a whole
//! directory at boot.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use tomo_core::{SessionSnapshot, TomoError, TomographySession};
use tomo_graph::Network;
use tomo_metrics::Instruments;
use tomo_topo::{AliasAnalysis, DriftKind, TopologyDoc, TopologyReport};

use crate::protocol::{
    AdmissionPolicy, ErrorKind, FleetStats, MetricsReport, NetMetrics, Response, TenantLoad,
    TenantMetrics, TenantStats, TenantSummary, TopologyInfoReport, TopologySource,
};

/// A validated tenant identifier: 1–64 characters drawn from
/// `[A-Za-z0-9._-]` (safe to embed in snapshot file names).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TenantId(String);

impl TenantId {
    /// Validates and wraps a tenant id.
    pub fn new(id: impl Into<String>) -> Result<Self, TomoError> {
        let id = id.into();
        let ok = !id.is_empty()
            && id.len() <= 64
            && id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
        if !ok {
            return Err(TomoError::InvalidConfig(format!(
                "invalid tenant id `{id}`: 1-64 characters from [A-Za-z0-9._-]"
            )));
        }
        Ok(Self(id))
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// FNV-1a over the id bytes — the shard selector.
    fn hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.0.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Registry configuration.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Number of shards the tenant map is split over.
    pub num_shards: usize,
    /// Maximum `Observe`/`ObserveBatch` requests queued per tenant before
    /// the daemon answers `Busy`.
    pub queue_bound: usize,
    /// Directory for per-tenant snapshot files (`None` disables
    /// snapshotting).
    pub snapshot_dir: Option<String>,
    /// Automatically snapshot a tenant every `n` ingested intervals.
    pub snapshot_every: Option<u64>,
    /// Full-queue admission policy for tenants whose `Create` did not pick
    /// one (the daemon's `--admission` flag).
    pub default_admission: AdmissionPolicy,
    /// Maximum entries in the upload topology library. Uploads past the cap
    /// are refused (idempotent re-uploads of stored names still succeed), so
    /// clients cannot grow daemon memory without bound.
    pub max_topologies: usize,
    /// Maximum links accepted in an uploaded or inline topology document.
    pub max_topology_links: usize,
    /// Maximum paths accepted in an uploaded or inline topology document.
    pub max_topology_paths: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            num_shards: 8,
            queue_bound: 64,
            snapshot_dir: None,
            snapshot_every: None,
            default_admission: AdmissionPolicy::Busy,
            max_topologies: 256,
            max_topology_links: 100_000,
            max_topology_paths: 100_000,
        }
    }
}

/// One queued observe batch: the validated intervals plus the request
/// deadline they must be ingested by (stale batches are discarded at
/// drain, never folded into the session).
struct QueuedBatch {
    intervals: Vec<Vec<usize>>,
    deadline: Option<Instant>,
}

/// The bounded per-tenant ingest queue.
struct IngestQueue {
    /// Pending observe batches, oldest first.
    batches: VecDeque<QueuedBatch>,
    /// Whether a drainer is currently folding batches into the session.
    draining: bool,
    /// Set by `drop_tenant` before its final flush: further observes are
    /// rejected, so nothing can slip in after the final snapshot (the
    /// lost-update race a bare map-removal would leave open).
    closed: bool,
    /// Observe requests rejected with `Busy`.
    busy_rejections: u64,
}

/// Mutable per-tenant state behind the session lock.
struct TenantState {
    session: TomographySession,
    snapshots_written: u64,
    intervals_at_last_snapshot: u64,
    ingest_errors: u64,
}

/// One tenant: session state + ingest queue + drain/flush signaling.
pub struct TenantEntry {
    id: TenantId,
    /// Immutable topology facts, readable without any lock.
    num_paths: usize,
    num_links: usize,
    /// Full-queue admission policy, fixed at create time.
    admission: AdmissionPolicy,
    /// Lock-free latency histograms + admission counters (no mutex; the
    /// dispatch path records into these while holding whatever lock the
    /// work itself needed, never an extra one).
    instruments: Instruments,
    state: Mutex<TenantState>,
    queue: Mutex<IngestQueue>,
    /// Signaled whenever the queue becomes empty and no drain is running.
    idle: Condvar,
    /// Connections currently attached to this tenant (load signal for
    /// `FleetStats` and the fleet router).
    live_conns: AtomicU64,
}

impl TenantEntry {
    fn new(id: TenantId, session: TomographySession, admission: AdmissionPolicy) -> Self {
        Self {
            id,
            num_paths: session.network().num_paths(),
            num_links: session.network().num_links(),
            admission,
            instruments: Instruments::new(),
            state: Mutex::new(TenantState {
                session,
                snapshots_written: 0,
                intervals_at_last_snapshot: 0,
                ingest_errors: 0,
            }),
            queue: Mutex::new(IngestQueue {
                batches: VecDeque::new(),
                draining: false,
                closed: false,
                busy_rejections: 0,
            }),
            idle: Condvar::new(),
            live_conns: AtomicU64::new(0),
        }
    }

    /// The tenant id.
    pub fn id(&self) -> &TenantId {
        &self.id
    }

    /// Links in the tenant's topology.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Paths in the tenant's topology.
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }

    /// The tenant's full-queue admission policy.
    pub fn admission(&self) -> AdmissionPolicy {
        self.admission
    }

    /// The tenant's lock-free instruments (latency histograms, admission
    /// counters). The server records request-level deadline expiries here.
    pub fn instruments(&self) -> &Instruments {
        &self.instruments
    }

    /// Records a connection attaching to this tenant.
    pub fn attach_conn(&self) {
        self.live_conns.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an attached connection going away.
    pub fn detach_conn(&self) {
        // Saturating: a detach can race a counter reset only through API
        // misuse, but a transient underflow must not wrap to u64::MAX.
        let _ = self
            .live_conns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
    }

    /// Connections currently attached to this tenant.
    pub fn live_conns(&self) -> u64 {
        self.live_conns.load(Ordering::Relaxed)
    }
}

/// One shard of the tenant map.
struct Shard {
    tenants: Mutex<HashMap<String, Arc<TenantEntry>>>,
}

/// One validated topology in the registry's upload library.
struct UploadedTopology {
    network: Network,
    report: TopologyReport,
}

/// The sharded multi-tenant registry — the daemon's engine.
pub struct EngineRegistry {
    config: RegistryConfig,
    shards: Vec<Shard>,
    /// The topology library: uploaded, validated topologies keyed by name,
    /// resolvable by `Create` after the builtin generator names. Uploads
    /// are idempotent on the canonical dedup hash; re-uploading a
    /// *different* structure under a taken name is refused.
    topologies: Mutex<HashMap<String, UploadedTopology>>,
    busy_rejections: AtomicU64,
    /// Batches dropped by shed-oldest admission, daemon-wide (per-tenant
    /// counts live in each entry's instruments; this global survives
    /// tenant drops).
    shed_batches: AtomicU64,
    /// Deadline expiries, daemon-wide.
    timeouts: AtomicU64,
    /// Connections currently open on the daemon serving this registry
    /// (maintained by the server's connection layer).
    live_connections: AtomicU64,
}

impl EngineRegistry {
    /// Creates an empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        let num_shards = config.num_shards.max(1);
        let shards = (0..num_shards)
            .map(|_| Shard {
                tenants: Mutex::new(HashMap::new()),
            })
            .collect();
        Self {
            config: RegistryConfig {
                num_shards,
                queue_bound: config.queue_bound.max(1),
                ..config
            },
            shards,
            topologies: Mutex::new(HashMap::new()),
            busy_rejections: AtomicU64::new(0),
            shed_batches: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            live_connections: AtomicU64::new(0),
        }
    }

    /// Records a connection opening on the serving daemon.
    pub fn conn_opened(&self) {
        self.live_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection closing on the serving daemon.
    pub fn conn_closed(&self) {
        let _ = self
            .live_connections
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
    }

    /// Connections currently open on the serving daemon.
    pub fn live_connections(&self) -> u64 {
        self.live_connections.load(Ordering::Relaxed)
    }

    /// The registry configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    fn shard(&self, id: &TenantId) -> &Shard {
        let index = (id.hash() % self.shards.len() as u64) as usize;
        &self.shards[index]
    }

    /// Registers a new tenant under the registry's default admission
    /// policy. Errors when the id is already taken.
    pub fn create(
        &self,
        id: TenantId,
        session: TomographySession,
    ) -> Result<Arc<TenantEntry>, TomoError> {
        self.create_with_admission(id, session, None)
    }

    /// Registers a new tenant with an explicit full-queue admission policy
    /// (`None` falls back to the registry default). Errors when the id is
    /// already taken.
    pub fn create_with_admission(
        &self,
        id: TenantId,
        session: TomographySession,
        admission: Option<AdmissionPolicy>,
    ) -> Result<Arc<TenantEntry>, TomoError> {
        let admission = admission.unwrap_or(self.config.default_admission);
        let shard = self.shard(&id);
        let mut tenants = shard.tenants.lock().expect("shard lock");
        if tenants.contains_key(id.as_str()) {
            return Err(TomoError::InvalidConfig(format!(
                "tenant `{id}` already exists"
            )));
        }
        let entry = Arc::new(TenantEntry::new(id.clone(), session, admission));
        tenants.insert(id.as_str().to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Looks a tenant up.
    pub fn lookup(&self, id: &TenantId) -> Option<Arc<TenantEntry>> {
        self.shard(id)
            .tenants
            .lock()
            .expect("shard lock")
            .get(id.as_str())
            .cloned()
    }

    /// Validates and stores an uploaded topology under `name`, returning
    /// its coverage report. Idempotent: re-uploading the *same* structure
    /// (by canonical dedup hash, which ignores names and metadata) under a
    /// taken name succeeds; a *different* structure under a taken name is
    /// refused. Builtin generator names cannot be shadowed because
    /// `Create` resolves them first, so uploads under those names are
    /// rejected outright.
    pub fn upload_topology(
        &self,
        name: &str,
        doc: TopologyDoc,
    ) -> Result<TopologyReport, TomoError> {
        let name = name.trim().to_ascii_lowercase();
        if name.is_empty() {
            return Err(TomoError::InvalidConfig(
                "topology name must not be empty".into(),
            ));
        }
        if crate::BUILTIN_TOPOLOGIES.contains(&name.as_str()) {
            return Err(TomoError::InvalidConfig(format!(
                "topology name `{name}` is reserved for a builtin generator"
            )));
        }
        self.check_document_bounds(&doc)?;
        let network = doc
            .to_network()
            .map_err(|e| TomoError::InvalidConfig(format!("invalid topology: {e}")))?;
        let report = tomo_topo::report_of(&network);
        let mut library = self.topologies.lock().expect("topology library lock");
        if let Some(existing) = library.get(&name) {
            if existing.report.hash == report.hash {
                return Ok(existing.report.clone());
            }
            return Err(TomoError::InvalidConfig(format!(
                "topology `{name}` already exists with a different structure \
                 (hash {} vs {}); pick a new name",
                existing.report.hash, report.hash
            )));
        }
        if library.len() >= self.config.max_topologies {
            return Err(TomoError::InvalidConfig(format!(
                "topology library is full ({} entries, cap {}); re-uploading a \
                 stored structure under its existing name still succeeds",
                library.len(),
                self.config.max_topologies
            )));
        }
        library.insert(
            name,
            UploadedTopology {
                network,
                report: report.clone(),
            },
        );
        Ok(report)
    }

    /// The names in the topology library, sorted.
    pub fn uploaded_topology_names(&self) -> Vec<String> {
        let library = self.topologies.lock().expect("topology library lock");
        let mut names: Vec<String> = library.keys().cloned().collect();
        names.sort();
        names
    }

    /// Resolves a `Create` topology source to a concrete network: builtin
    /// generator names first, then the upload library, then a typed error
    /// listing every accepted name plus the inline-upload escape hatch.
    /// Inline documents run through the structural checker.
    pub fn resolve_topology_source(
        &self,
        source: &TopologySource,
        seed: u64,
    ) -> Result<Network, TomoError> {
        match source {
            TopologySource::Named(name) => {
                if let Ok(network) = crate::resolve_topology(name, seed) {
                    return Ok(network);
                }
                let key = name.trim().to_ascii_lowercase();
                let library = self.topologies.lock().expect("topology library lock");
                if let Some(uploaded) = library.get(&key) {
                    return Ok(uploaded.network.clone());
                }
                let mut accepted: Vec<String> = crate::BUILTIN_TOPOLOGIES
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                accepted.extend(library.keys().cloned());
                accepted.sort();
                Err(TomoError::InvalidConfig(format!(
                    "unknown topology `{name}` (accepted names: {}; upload your own \
                     with UploadTopology, or create from an inline document with \
                     {{\"topology\": {{\"inline\": ...}}}})",
                    accepted.join(", ")
                )))
            }
            TopologySource::Inline(doc) => {
                self.check_document_bounds(doc)?;
                doc.to_network()
                    .map_err(|e| TomoError::InvalidConfig(format!("invalid topology: {e}")))
            }
        }
    }

    /// Refuses documents past the configured link/path caps before any
    /// validation work runs — the size fields come straight off the parsed
    /// document, so oversized uploads are rejected in O(1) instead of
    /// instantiating arbitrarily large sessions or library entries.
    fn check_document_bounds(&self, doc: &TopologyDoc) -> Result<(), TomoError> {
        let (links, paths) = (doc.network.num_links(), doc.network.num_paths());
        if links > self.config.max_topology_links {
            return Err(TomoError::InvalidConfig(format!(
                "topology has {links} links, above the daemon cap of {}",
                self.config.max_topology_links
            )));
        }
        if paths > self.config.max_topology_paths {
            return Err(TomoError::InvalidConfig(format!(
                "topology has {paths} paths, above the daemon cap of {}",
                self.config.max_topology_paths
            )));
        }
        Ok(())
    }

    /// The topology lifecycle report behind `TopologyInfo`: the structural
    /// coverage report and identifiability-driven alias analysis of the
    /// tenant's live network, plus its rebuild policy and drift state.
    ///
    /// The state lock is held only long enough to clone the network and read
    /// the drift/rebuild facts; the O(paths·links²) alias analysis runs on
    /// the clone so repeated `TopologyInfo` calls never stall ingest or
    /// queries. Session networks are builder-validated on every ingress path
    /// (generators, checked uploads, checked restores), so the report is
    /// derived directly; a network that still fails the checker is reported
    /// as a typed error, never a panic under the lock.
    pub fn topology_info(&self, entry: &Arc<TenantEntry>) -> Result<TopologyInfoReport, TomoError> {
        let started = Instant::now();
        let (network, rebuild, drift, recent_events) = {
            let state = entry.state.lock().expect("tenant state lock");
            (
                state.session.network().clone(),
                state.session.config().rebuild,
                state.session.drift_counters(),
                state.session.recent_drift_events().to_vec(),
            )
        };
        let network = tomo_topo::TopologyDoc::from_network(network)
            .to_network()
            .map_err(|e| {
                TomoError::InvalidConfig(format!(
                    "tenant `{}` holds a structurally invalid network: {e}",
                    entry.id
                ))
            })?;
        let info = TopologyInfoReport {
            report: tomo_topo::report_of(&network),
            alias: AliasAnalysis::analyze(&network),
            rebuild,
            drift,
            recent_events,
        };
        entry
            .instruments
            .record_query_ns(started.elapsed().as_nanos() as u64);
        Ok(info)
    }

    /// Removes a tenant: unregisters it (new requests see `UnknownTenant`),
    /// drains its remaining queue, and writes a final snapshot when
    /// configured. The snapshot file is left on disk so a later `create` +
    /// restore can resurrect the tenant.
    pub fn drop_tenant(&self, id: &TenantId) -> Result<(), TomoError> {
        let entry = {
            let mut tenants = self.shard(id).tenants.lock().expect("shard lock");
            tenants
                .remove(id.as_str())
                .ok_or_else(|| TomoError::InvalidConfig(format!("unknown tenant `{id}`")))?
        };
        // Close the queue first: an Observe that resolved the entry before
        // the map removal now gets `UnknownTenant` instead of enqueueing
        // behind the final snapshot (acknowledged-then-lost data).
        entry.queue.lock().expect("tenant queue lock").closed = true;
        self.flush(&entry);
        if self.config.snapshot_dir.is_some() {
            let _ = self.snapshot_tenant(&entry);
        }
        Ok(())
    }

    /// All tenants, sorted by id.
    fn entries(&self) -> Vec<Arc<TenantEntry>> {
        let mut all: Vec<Arc<TenantEntry>> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.tenants
                    .lock()
                    .expect("shard lock")
                    .values()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by(|a, b| a.id.as_str().cmp(b.id.as_str()));
        all
    }

    /// The tenant listing.
    pub fn list(&self) -> Vec<TenantSummary> {
        self.entries()
            .into_iter()
            .map(|e| {
                let state = e.state.lock().expect("tenant state lock");
                TenantSummary {
                    tenant: e.id.as_str().to_string(),
                    estimator: state.session.config().estimator.clone(),
                    links: e.num_links,
                    paths: e.num_paths,
                    intervals: state.session.intervals_ingested(),
                }
            })
            .collect()
    }

    /// Number of registered tenants.
    pub fn num_tenants(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.tenants.lock().expect("shard lock").len())
            .sum()
    }

    /// Enqueues an observe batch onto the tenant's bounded ingest queue.
    /// Returns `Accepted` (and drains the queue if no drainer is active),
    /// or `Busy` when the queue is full. Path indices are validated *before*
    /// enqueueing so accepted batches cannot fail for client reasons.
    pub fn observe(&self, entry: &Arc<TenantEntry>, intervals: Vec<Vec<usize>>) -> Response {
        self.observe_deadline(entry, intervals, None)
    }

    /// [`EngineRegistry::observe`] with a request deadline: if the batch is
    /// still queued when `deadline` passes, the drainer discards it (and
    /// counts a timeout) instead of folding stale data into the session.
    /// Under the `ShedOldest` admission policy a full queue drops its
    /// oldest batch to make room instead of answering `Busy`.
    pub fn observe_deadline(
        &self,
        entry: &Arc<TenantEntry>,
        intervals: Vec<Vec<usize>>,
        deadline: Option<Instant>,
    ) -> Response {
        if intervals.is_empty() {
            return Response::error(ErrorKind::InvalidRequest, "empty observation batch");
        }
        for congested in &intervals {
            if let Some(&bad) = congested.iter().find(|&&p| p >= entry.num_paths) {
                return Response::error(
                    ErrorKind::InvalidRequest,
                    format!("path index {bad} out of range (paths: {})", entry.num_paths),
                );
            }
        }
        let ingested = intervals.len();
        let (drain, pending) = {
            let mut queue = entry.queue.lock().expect("tenant queue lock");
            if queue.closed {
                return Response::error(
                    ErrorKind::UnknownTenant,
                    format!("tenant `{}` was dropped", entry.id),
                );
            }
            if queue.batches.len() >= self.config.queue_bound {
                match entry.admission {
                    AdmissionPolicy::Busy => {
                        queue.busy_rejections += 1;
                        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
                        return Response::Busy {
                            pending_batches: queue.batches.len(),
                            bound: self.config.queue_bound,
                        };
                    }
                    AdmissionPolicy::ShedOldest => {
                        // Freshness over completeness: drop the oldest
                        // *queued* batch (the one whose data is stalest)
                        // and accept the new one in its place.
                        if let Some(oldest) = queue.batches.pop_front() {
                            entry.instruments.record_shed(oldest.intervals.len() as u64);
                            self.shed_batches.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            queue.batches.push_back(QueuedBatch {
                intervals,
                deadline,
            });
            let drain = if queue.draining {
                false
            } else {
                queue.draining = true;
                true
            };
            (drain, queue.batches.len())
        };
        if drain {
            self.drain(entry);
        }
        Response::Accepted {
            ingested,
            pending_batches: pending,
        }
    }

    /// Folds queued batches into the session until the queue is empty.
    /// Exactly one drainer runs per tenant (the connection thread whose
    /// enqueue flipped the `draining` flag); everyone else enqueues and
    /// moves on.
    fn drain(&self, entry: &Arc<TenantEntry>) {
        loop {
            let batch = {
                let mut queue = entry.queue.lock().expect("tenant queue lock");
                match queue.batches.pop_front() {
                    Some(batch) => batch,
                    None => {
                        queue.draining = false;
                        entry.idle.notify_all();
                        return;
                    }
                }
            };
            // Deadline check at dequeue: a batch that waited past its
            // request deadline is discarded unexecuted — the client was
            // promised freshness, not late work.
            if batch
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
            {
                self.record_timeout(entry);
                continue;
            }
            let started = Instant::now();
            let mut state = entry.state.lock().expect("tenant state lock");
            if let Err(e) = state.session.observe(&batch.intervals) {
                // Batches are validated at enqueue time, so this is an
                // internal failure; count it and keep serving.
                state.ingest_errors += 1;
                eprintln!("tomo-serve: tenant {}: ingest failed: {e}", entry.id);
            } else {
                // Surface topology drift flagged by this batch into the
                // tenant's lock-free instruments so `Metrics` sees it
                // without taking the session lock.
                let events = state.session.take_drift_events();
                if !events.is_empty() {
                    let (mut appeared, mut disappeared, mut path_changes) = (0u64, 0u64, 0u64);
                    for event in &events {
                        match event.kind {
                            DriftKind::LinkAppeared => appeared += 1,
                            DriftKind::LinkDisappeared => disappeared += 1,
                            DriftKind::PathSetChanged => path_changes += 1,
                        }
                    }
                    entry
                        .instruments
                        .record_drift(appeared, disappeared, path_changes);
                }
            }
            entry
                .instruments
                .record_ingest_ns(started.elapsed().as_nanos() as u64);
            self.maybe_autosnapshot(entry, &mut state);
        }
    }

    /// Counts one deadline expiry against the tenant and the daemon. The
    /// server also calls this when a request expires at connection-queue
    /// dequeue (before it ever reaches the registry).
    pub fn record_timeout(&self, entry: &Arc<TenantEntry>) {
        entry.instruments.record_timeout();
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one deadline expiry not attributable to a live tenant (the
    /// daemon-wide counter still moves).
    pub fn record_anonymous_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Blocks until the tenant's ingest queue has fully drained, returning
    /// the lifetime interval count afterwards. If batches are pending with
    /// no active drainer (its thread died, or the queue was filled out of
    /// band), the flusher takes the drain over instead of waiting forever.
    pub fn flush(&self, entry: &Arc<TenantEntry>) -> u64 {
        let mut queue = entry.queue.lock().expect("tenant queue lock");
        loop {
            if queue.batches.is_empty() && !queue.draining {
                break;
            }
            if !queue.draining {
                queue.draining = true;
                drop(queue);
                self.drain(entry);
                queue = entry.queue.lock().expect("tenant queue lock");
                continue;
            }
            queue = entry.idle.wait(queue).expect("tenant queue condvar");
        }
        drop(queue);
        let state = entry.state.lock().expect("tenant state lock");
        state.session.intervals_ingested()
    }

    /// The tenant's current estimate. The recorded query latency includes
    /// the wait for the state lock — contention is part of what an
    /// operator needs to see.
    pub fn query(&self, entry: &Arc<TenantEntry>) -> Response {
        let started = Instant::now();
        let state = entry.state.lock().expect("tenant state lock");
        let response = match state.session.query() {
            Ok(estimate) => Response::Estimate(estimate),
            Err(e) => Response::from_error(&e),
        };
        entry
            .instruments
            .record_query_ns(started.elapsed().as_nanos() as u64);
        response
    }

    /// Boolean inference for one interval (recorded as read-path latency,
    /// like `query`).
    pub fn infer(&self, entry: &Arc<TenantEntry>, congested: &[usize]) -> Response {
        let started = Instant::now();
        let state = entry.state.lock().expect("tenant state lock");
        let response = match state.session.infer(congested) {
            Ok(links) => Response::Inferred { links },
            Err(e) => Response::from_error(&e),
        };
        entry
            .instruments
            .record_query_ns(started.elapsed().as_nanos() as u64);
        response
    }

    /// Per-tenant statistics.
    pub fn stats(&self, entry: &Arc<TenantEntry>) -> TenantStats {
        let session_stats = {
            let state = entry.state.lock().expect("tenant state lock");
            (state.session.stats(), state.ingest_errors, {
                state.snapshots_written
            })
        };
        let (pending, busy) = {
            let queue = entry.queue.lock().expect("tenant queue lock");
            (queue.batches.len(), queue.busy_rejections)
        };
        let instruments = entry.instruments.snapshot();
        TenantStats {
            tenant: entry.id.as_str().to_string(),
            session: session_stats.0,
            pending_batches: pending,
            queue_bound: self.config.queue_bound,
            busy_rejections: busy,
            shed_batches: instruments.shed_batches,
            shed_intervals: instruments.shed_intervals,
            timeouts: instruments.timeouts,
            ingest_errors: session_stats.1,
            snapshots_written: session_stats.2,
        }
    }

    /// Daemon-wide statistics.
    pub fn fleet_stats(&self) -> FleetStats {
        let mut total_ingested = 0;
        let mut refits = tomo_core::online::RefitCounts::default();
        let mut drift = tomo_core::DriftCounters::default();
        let entries = self.entries();
        let tenants = entries.len();
        let mut per_tenant = Vec::with_capacity(tenants);
        for e in &entries {
            let stats = {
                let state = e.state.lock().expect("tenant state lock");
                state.session.stats()
            };
            total_ingested += stats.total_ingested;
            refits.incremental += stats.refits.incremental;
            refits.full += stats.refits.full;
            refits.basis_rebuilds += stats.refits.basis_rebuilds;
            drift.merge(&stats.drift);
            let pending = e.queue.lock().expect("tenant queue lock").batches.len();
            per_tenant.push(TenantLoad {
                tenant: e.id.as_str().to_string(),
                pending_batches: pending,
                live_conns: e.live_conns(),
            });
        }
        FleetStats {
            tenants,
            shards: self.config.num_shards,
            total_ingested,
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            shed_batches: self.shed_batches.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            refits,
            drift,
            live_connections: self.live_connections(),
            per_tenant,
        }
    }

    /// The observability report behind [`crate::protocol::Request::Metrics`]:
    /// one [`TenantMetrics`] row per tenant (latency summaries derived from
    /// the instruments, queue depth, admission counters) plus daemon-wide
    /// totals. `net` carries the connection-layer counters when the caller
    /// runs behind a `tomo-net` front end.
    pub fn metrics(&self, net: Option<NetMetrics>) -> MetricsReport {
        let entries = self.entries();
        let mut per_tenant = Vec::with_capacity(entries.len());
        let mut total_intervals = 0;
        for e in &entries {
            let ingested = {
                let state = e.state.lock().expect("tenant state lock");
                state.session.intervals_ingested()
            };
            let (pending, busy) = {
                let queue = e.queue.lock().expect("tenant queue lock");
                (queue.batches.len(), queue.busy_rejections)
            };
            let instruments = e.instruments.snapshot();
            total_intervals += ingested;
            per_tenant.push(TenantMetrics {
                tenant: e.id.as_str().to_string(),
                ingested_intervals: ingested,
                queue_depth: pending,
                queue_bound: self.config.queue_bound,
                admission: e.admission,
                busy_rejections: busy,
                shed_batches: instruments.shed_batches,
                shed_intervals: instruments.shed_intervals,
                timeouts: instruments.timeouts,
                ingest: instruments.ingest,
                query: instruments.query,
                drift_links_appeared: instruments.drift_links_appeared,
                drift_links_disappeared: instruments.drift_links_disappeared,
                drift_path_set_changes: instruments.drift_path_set_changes,
            });
        }
        MetricsReport {
            total_intervals,
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            shed_batches: self.shed_batches.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            net,
            per_tenant,
        }
    }

    /// Serializes a tenant's current session to `SessionSnapshot` JSON
    /// without touching disk — the sending half of an inline handoff.
    pub fn snapshot_json(&self, entry: &Arc<TenantEntry>) -> Result<String, TomoError> {
        let state = entry.state.lock().expect("tenant state lock");
        serde_json::to_string(&state.session.snapshot())
            .map_err(|e| TomoError::Serde(e.to_string()))
    }

    /// Creates a tenant from an inline `SessionSnapshot` JSON string — the
    /// receiving half of a tenant handoff. Errors when the snapshot does
    /// not parse/restore or the tenant already exists.
    pub fn restore_tenant(
        &self,
        id: TenantId,
        snapshot_json: &str,
    ) -> Result<Arc<TenantEntry>, TomoError> {
        let snapshot: SessionSnapshot = serde_json::from_str(snapshot_json)
            .map_err(|e| TomoError::InvalidConfig(format!("bad snapshot payload: {e}")))?;
        let session = TomographySession::restore(snapshot)
            .map_err(|e| TomoError::InvalidConfig(format!("cannot restore tenant `{id}`: {e}")))?;
        self.create(id, session)
    }

    /// The snapshot file path of a tenant, when snapshotting is configured.
    pub fn snapshot_path(&self, id: &TenantId) -> Option<String> {
        self.config
            .snapshot_dir
            .as_ref()
            .map(|dir| format!("{dir}/{id}.json"))
    }

    /// Writes one tenant's snapshot file atomically (write-then-rename).
    /// `Ok(None)` when snapshotting is disabled.
    pub fn snapshot_tenant(&self, entry: &Arc<TenantEntry>) -> Result<Option<String>, TomoError> {
        let Some(path) = self.snapshot_path(&entry.id) else {
            return Ok(None);
        };
        let mut state = entry.state.lock().expect("tenant state lock");
        self.write_snapshot(&path, &mut state)?;
        Ok(Some(path))
    }

    /// The one atomic-write path both snapshot entry points share:
    /// serialize under the caller's state lock, write to a temp file,
    /// rename over the last good snapshot, then bump the counters.
    fn write_snapshot(&self, path: &str, state: &mut TenantState) -> Result<(), TomoError> {
        if let Some(dir) = &self.config.snapshot_dir {
            std::fs::create_dir_all(dir)?;
        }
        let json = serde_json::to_string(&state.session.snapshot())
            .map_err(|e| TomoError::Serde(e.to_string()))?;
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)?;
        state.snapshots_written += 1;
        state.intervals_at_last_snapshot = state.session.intervals_ingested();
        Ok(())
    }

    /// Auto-snapshot hook run by the drainer after each ingested batch.
    fn maybe_autosnapshot(&self, entry: &Arc<TenantEntry>, state: &mut TenantState) {
        let Some(every) = self.config.snapshot_every else {
            return;
        };
        let Some(path) = self.snapshot_path(&entry.id) else {
            return;
        };
        if state.session.intervals_ingested() - state.intervals_at_last_snapshot < every {
            return;
        }
        if let Err(e) = self.write_snapshot(&path, state) {
            eprintln!("tomo-serve: tenant {}: auto-snapshot failed: {e}", entry.id);
        }
    }

    /// Snapshots every tenant, returning the written paths (tenants whose
    /// snapshot failed are reported on stderr and skipped).
    pub fn snapshot_all(&self) -> Vec<String> {
        let mut written = Vec::new();
        for entry in self.entries() {
            match self.snapshot_tenant(&entry) {
                Ok(Some(path)) => written.push(path),
                Ok(None) => {}
                Err(e) => eprintln!("tomo-serve: tenant {}: snapshot failed: {e}", entry.id),
            }
        }
        written
    }

    /// Restores a fleet from the snapshot directory: every `*.json` file
    /// becomes one tenant (named after the file stem). Returns the restored
    /// tenant ids, sorted.
    pub fn restore_fleet(&self, dir: &str) -> Result<Vec<String>, TomoError> {
        let mut restored = Vec::new();
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(restored),
            Err(e) => return Err(e.into()),
        };
        for file in entries {
            let path = file?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let id = TenantId::new(stem)?;
            let text = std::fs::read_to_string(&path)?;
            let snapshot: SessionSnapshot =
                serde_json::from_str(&text).map_err(|e| TomoError::Serde(e.to_string()))?;
            let session = TomographySession::restore(snapshot).map_err(|e| {
                TomoError::InvalidConfig(format!("cannot restore tenant `{id}`: {e}"))
            })?;
            self.create(id.clone(), session)?;
            restored.push(id.as_str().to_string());
        }
        restored.sort();
        Ok(restored)
    }

    /// Shutdown hook: snapshots every tenant (when configured).
    pub fn shutdown(&self) {
        let _ = self.snapshot_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_core::SessionConfig;

    fn toy_session() -> TomographySession {
        TomographySession::new(tomo_graph::toy::fig1_case1(), SessionConfig::default()).unwrap()
    }

    fn intervals(n: usize, offset: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|t| {
                let t = t + offset;
                let mut congested = Vec::new();
                if t.is_multiple_of(5) {
                    congested.extend([0, 1]);
                }
                if t % 4 == 1 {
                    congested.push(2);
                }
                congested
            })
            .collect()
    }

    #[test]
    fn tenant_ids_are_validated() {
        assert!(TenantId::new("as-7018").is_ok());
        assert!(TenantId::new("A.b_c-9").is_ok());
        assert!(TenantId::new("").is_err());
        assert!(TenantId::new("has space").is_err());
        assert!(TenantId::new("../escape").is_err());
        assert!(TenantId::new("x".repeat(65)).is_err());
    }

    #[test]
    fn tenants_hash_across_shards() {
        let registry = EngineRegistry::new(RegistryConfig {
            num_shards: 4,
            ..RegistryConfig::default()
        });
        for i in 0..32 {
            registry
                .create(TenantId::new(format!("t{i}")).unwrap(), toy_session())
                .unwrap();
        }
        assert_eq!(registry.num_tenants(), 32);
        // FNV spreads 32 ids over 4 shards: no shard should be empty.
        for shard in &registry.shards {
            assert!(!shard.tenants.lock().unwrap().is_empty());
        }
        assert_eq!(registry.list().len(), 32);
    }

    #[test]
    fn create_lookup_drop_lifecycle() {
        let registry = EngineRegistry::new(RegistryConfig::default());
        let id = TenantId::new("as-1").unwrap();
        registry.create(id.clone(), toy_session()).unwrap();
        assert!(registry.lookup(&id).is_some());
        // Duplicate create fails.
        assert!(registry.create(id.clone(), toy_session()).is_err());
        registry.drop_tenant(&id).unwrap();
        assert!(registry.lookup(&id).is_none());
        assert!(registry.drop_tenant(&id).is_err());
    }

    #[test]
    fn observe_flush_query_round_trip() {
        let registry = EngineRegistry::new(RegistryConfig::default());
        let id = TenantId::new("as-1").unwrap();
        let entry = registry.create(id, toy_session()).unwrap();
        let resp = registry.observe(&entry, intervals(40, 0));
        assert!(
            matches!(resp, Response::Accepted { ingested: 40, .. }),
            "{resp:?}"
        );
        assert_eq!(registry.flush(&entry), 40);
        match registry.query(&entry) {
            Response::Estimate(est) => {
                assert_eq!(est.probabilities.len(), 4);
                assert_eq!(est.intervals, 40);
            }
            other => panic!("expected estimate, got {other:?}"),
        }
        let stats = registry.stats(&entry);
        assert_eq!(stats.session.total_ingested, 40);
        assert_eq!(stats.pending_batches, 0);
        assert_eq!(stats.busy_rejections, 0);
        assert_eq!(stats.ingest_errors, 0);
    }

    #[test]
    fn invalid_batches_are_rejected_before_the_queue() {
        let registry = EngineRegistry::new(RegistryConfig::default());
        let entry = registry
            .create(TenantId::new("as-1").unwrap(), toy_session())
            .unwrap();
        assert!(matches!(
            registry.observe(&entry, vec![]),
            Response::Error {
                kind: ErrorKind::InvalidRequest,
                ..
            }
        ));
        assert!(matches!(
            registry.observe(&entry, vec![vec![99]]),
            Response::Error {
                kind: ErrorKind::InvalidRequest,
                ..
            }
        ));
        assert_eq!(registry.stats(&entry).session.total_ingested, 0);
    }

    #[test]
    fn full_queue_answers_busy_and_recovers_after_flush() {
        let registry = EngineRegistry::new(RegistryConfig {
            queue_bound: 2,
            ..RegistryConfig::default()
        });
        let entry = registry
            .create(TenantId::new("noisy").unwrap(), toy_session())
            .unwrap();
        // Pre-fill the queue under a parked drain flag so nothing drains.
        {
            let mut queue = entry.queue.lock().unwrap();
            queue.draining = true;
            queue.batches.push_back(QueuedBatch {
                intervals: intervals(5, 0),
                deadline: None,
            });
            queue.batches.push_back(QueuedBatch {
                intervals: intervals(5, 5),
                deadline: None,
            });
        }
        match registry.observe(&entry, intervals(5, 10)) {
            Response::Busy {
                pending_batches,
                bound,
            } => {
                assert_eq!(pending_batches, 2);
                assert_eq!(bound, 2);
            }
            other => panic!("expected busy, got {other:?}"),
        }
        assert_eq!(registry.stats(&entry).busy_rejections, 1);
        assert_eq!(registry.fleet_stats().busy_rejections, 1);
        // Un-park; flush takes the drain over and empties the queue.
        {
            let mut queue = entry.queue.lock().unwrap();
            queue.draining = false;
        }
        assert_eq!(registry.flush(&entry), 10);
        // With room again, observes are accepted once more.
        let resp = registry.observe(&entry, intervals(5, 10));
        assert!(matches!(resp, Response::Accepted { .. }), "{resp:?}");
        assert_eq!(registry.flush(&entry), 15);
    }

    #[test]
    fn observes_racing_a_drop_are_rejected_not_lost() {
        let registry = EngineRegistry::new(RegistryConfig::default());
        let id = TenantId::new("as-1").unwrap();
        let entry = registry.create(id.clone(), toy_session()).unwrap();
        registry.observe(&entry, intervals(5, 0));
        registry.drop_tenant(&id).unwrap();
        // A stale entry handle (resolved before the drop) can no longer
        // enqueue: the batch would land after the final snapshot and be
        // silently lost, so it is refused instead of Accepted.
        match registry.observe(&entry, intervals(5, 5)) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::UnknownTenant),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn fleet_snapshot_restore_round_trip() {
        let dir = std::env::temp_dir()
            .join(format!("tomo-registry-snap-{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let config = RegistryConfig {
            snapshot_dir: Some(dir.clone()),
            ..RegistryConfig::default()
        };
        let registry = EngineRegistry::new(config.clone());
        let mut estimates = Vec::new();
        for (i, name) in ["as-1", "as-2", "as-3"].iter().enumerate() {
            let entry = registry
                .create(TenantId::new(*name).unwrap(), toy_session())
                .unwrap();
            registry.observe(&entry, intervals(30 + 10 * i, i));
            registry.flush(&entry);
            let paths = registry.snapshot_tenant(&entry).unwrap().unwrap();
            assert!(paths.ends_with(&format!("{name}.json")));
            match registry.query(&entry) {
                Response::Estimate(est) => estimates.push(est),
                other => panic!("{other:?}"),
            }
        }

        let restored = EngineRegistry::new(config);
        let names = restored.restore_fleet(&dir).unwrap();
        assert_eq!(names, vec!["as-1", "as-2", "as-3"]);
        for (i, name) in names.iter().enumerate() {
            let entry = restored
                .lookup(&TenantId::new(name.clone()).unwrap())
                .unwrap();
            match restored.query(&entry) {
                Response::Estimate(est) => {
                    assert_eq!(est.intervals, estimates[i].intervals);
                    for (a, b) in est.probabilities.iter().zip(&estimates[i].probabilities) {
                        assert!((a - b).abs() < 1e-9);
                    }
                }
                other => panic!("{other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_tenant_from_inline_snapshot_round_trips() {
        let registry = EngineRegistry::new(RegistryConfig::default());
        let id = TenantId::new("as-1").unwrap();
        let entry = registry.create(id.clone(), toy_session()).unwrap();
        registry.observe(&entry, intervals(40, 0));
        registry.flush(&entry);
        let snapshot = {
            let state = entry.state.lock().unwrap();
            serde_json::to_string(&state.session.snapshot()).unwrap()
        };
        let before = match registry.query(&entry) {
            Response::Estimate(est) => est,
            other => panic!("{other:?}"),
        };

        // Hand the snapshot to a second registry under a new id.
        let other = EngineRegistry::new(RegistryConfig::default());
        let restored = other
            .restore_tenant(TenantId::new("as-1").unwrap(), &snapshot)
            .unwrap();
        match other.query(&restored) {
            Response::Estimate(est) => {
                assert_eq!(est.intervals, before.intervals);
                for (a, b) in est.probabilities.iter().zip(&before.probabilities) {
                    assert!((a - b).abs() < 1e-9);
                }
            }
            other => panic!("{other:?}"),
        }

        // Occupied id and garbage payloads are typed failures.
        assert!(registry.restore_tenant(id, &snapshot).is_err());
        assert!(other
            .restore_tenant(TenantId::new("as-2").unwrap(), "{not json")
            .is_err());
    }

    #[test]
    fn live_connection_counters_feed_fleet_stats() {
        let registry = EngineRegistry::new(RegistryConfig::default());
        let entry = registry
            .create(TenantId::new("as-1").unwrap(), toy_session())
            .unwrap();
        registry.conn_opened();
        registry.conn_opened();
        entry.attach_conn();
        entry.attach_conn();
        entry.detach_conn();
        let fleet = registry.fleet_stats();
        assert_eq!(fleet.live_connections, 2);
        assert_eq!(fleet.per_tenant.len(), 1);
        assert_eq!(fleet.per_tenant[0].tenant, "as-1");
        assert_eq!(fleet.per_tenant[0].live_conns, 1);
        assert_eq!(fleet.per_tenant[0].pending_batches, 0);
        registry.conn_closed();
        registry.conn_closed();
        registry.conn_closed(); // saturates at zero, never wraps
        assert_eq!(registry.live_connections(), 0);
        entry.detach_conn();
        entry.detach_conn();
        assert_eq!(entry.live_conns(), 0);
    }

    #[test]
    fn shed_oldest_drops_exactly_the_oldest_batch() {
        let registry = EngineRegistry::new(RegistryConfig {
            queue_bound: 3,
            ..RegistryConfig::default()
        });
        let entry = registry
            .create_with_admission(
                TenantId::new("fresh").unwrap(),
                toy_session(),
                Some(AdmissionPolicy::ShedOldest),
            )
            .unwrap();
        assert_eq!(entry.admission(), AdmissionPolicy::ShedOldest);
        // Park the drainer (a stalled worker) so the queue actually fills.
        entry.queue.lock().unwrap().draining = true;
        let batches: Vec<Vec<Vec<usize>>> = (0..4).map(|i| intervals(5 + i, 7 * i)).collect();
        for batch in &batches {
            let resp = registry.observe(&entry, batch.clone());
            assert!(matches!(resp, Response::Accepted { .. }), "{resp:?}");
        }
        // The 4th observe shed the oldest queued batch (batches[0]).
        let stats = registry.stats(&entry);
        assert_eq!(stats.shed_batches, 1);
        assert_eq!(stats.shed_intervals, batches[0].len() as u64);
        assert_eq!(stats.busy_rejections, 0);
        assert_eq!(registry.fleet_stats().shed_batches, 1);

        entry.queue.lock().unwrap().draining = false;
        let retained: u64 = batches[1..].iter().map(|b| b.len() as u64).sum();
        assert_eq!(registry.flush(&entry), retained);

        // The estimate matches an offline fit of the retained suffix —
        // proof the drop hit exactly the oldest batch and nothing else.
        let mut offline = toy_session();
        for batch in &batches[1..] {
            offline.observe(batch).unwrap();
        }
        let expected = offline.query().unwrap();
        match registry.query(&entry) {
            Response::Estimate(est) => {
                assert_eq!(est.intervals, expected.intervals);
                for (a, b) in est.probabilities.iter().zip(&expected.probabilities) {
                    assert!((a - b).abs() < 1e-9, "{a} vs {b}");
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deadline_expired_batches_are_dropped_at_drain() {
        let registry = EngineRegistry::new(RegistryConfig::default());
        let entry = registry
            .create(TenantId::new("as-1").unwrap(), toy_session())
            .unwrap();
        // Stall the worker: both batches sit in the queue, the first past
        // its deadline by the time the drain runs.
        entry.queue.lock().unwrap().draining = true;
        let expired = registry.observe_deadline(&entry, intervals(5, 0), Some(Instant::now()));
        assert!(matches!(expired, Response::Accepted { .. }), "{expired:?}");
        let fresh = registry.observe_deadline(&entry, intervals(7, 5), None);
        assert!(matches!(fresh, Response::Accepted { .. }), "{fresh:?}");
        entry.queue.lock().unwrap().draining = false;

        // Only the fresh batch reaches the session; the stale one counts
        // as a timeout instead of being executed late.
        assert_eq!(registry.flush(&entry), 7);
        let stats = registry.stats(&entry);
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.session.total_ingested, 7);
        assert_eq!(registry.fleet_stats().timeouts, 1);
    }

    #[test]
    fn metrics_reports_latency_histograms_and_totals() {
        let registry = EngineRegistry::new(RegistryConfig::default());
        for (name, n) in [("as-1", 30), ("as-2", 50)] {
            let entry = registry
                .create(TenantId::new(name).unwrap(), toy_session())
                .unwrap();
            registry.observe(&entry, intervals(n, 0));
            registry.flush(&entry);
            registry.query(&entry);
        }
        let report = registry.metrics(None);
        assert_eq!(report.per_tenant.len(), 2);
        assert_eq!(report.total_intervals, 80);
        assert_eq!(report.net, None);
        assert_eq!(
            report.total_intervals,
            report
                .per_tenant
                .iter()
                .map(|t| t.ingested_intervals)
                .sum::<u64>()
        );
        let tenants: Vec<&str> = report
            .per_tenant
            .iter()
            .map(|t| t.tenant.as_str())
            .collect();
        assert_eq!(tenants, ["as-1", "as-2"]);
        for row in &report.per_tenant {
            assert_eq!(row.queue_depth, 0);
            assert_eq!(row.admission, AdmissionPolicy::Busy);
            assert!(row.ingest.count >= 1, "{row:?}");
            assert_eq!(row.query.count, 1);
            assert!(row.ingest.p50_ns > 0);
            assert!(row.ingest.p50_ns <= row.ingest.p95_ns);
            assert!(row.ingest.p95_ns <= row.ingest.p99_ns);
            assert!(row.ingest.p99_ns <= row.ingest.hist.max.max(row.ingest.p99_ns));
        }
        let net = NetMetrics {
            accepted: 3,
            ..NetMetrics::default()
        };
        assert_eq!(registry.metrics(Some(net)).net, Some(net));
    }

    #[test]
    fn topology_library_uploads_resolve_and_dedup() {
        let registry = EngineRegistry::new(RegistryConfig::default());
        let doc = TopologyDoc::from_network(tomo_graph::toy::fig1_case1());
        let report = registry.upload_topology("measured-1", doc.clone()).unwrap();
        assert_eq!(report.links, 4);
        // Re-uploading the same structure under the same name is idempotent.
        let again = registry.upload_topology("measured-1", doc.clone()).unwrap();
        assert_eq!(again.hash, report.hash);
        // A different structure under a taken name is refused; builtin
        // generator names cannot be shadowed at all.
        let other = TopologyDoc::from_network(tomo_graph::toy::fig1_case2());
        assert!(registry.upload_topology("measured-1", other).is_err());
        assert!(registry.upload_topology("toy", doc).is_err());
        assert_eq!(registry.uploaded_topology_names(), vec!["measured-1"]);
        // Create resolution: builtin first, then the library, then a typed
        // error listing both plus the inline escape hatch.
        let net = registry
            .resolve_topology_source(&TopologySource::Named("measured-1".into()), 0)
            .unwrap();
        assert_eq!(net.num_links(), 4);
        let err = registry
            .resolve_topology_source(&TopologySource::Named("nope".into()), 0)
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("measured-1") && msg.contains("toy") && msg.contains("inline"),
            "{msg}"
        );
    }

    #[test]
    fn restore_rejects_crafted_snapshots_without_poisoning_the_fleet() {
        let registry = EngineRegistry::new(RegistryConfig::default());
        let healthy = registry
            .create(TenantId::new("healthy").unwrap(), toy_session())
            .unwrap();
        let snapshot = {
            let mut session = toy_session();
            session.observe(&intervals(10, 0)).unwrap();
            serde_json::to_string(&session.snapshot()).unwrap()
        };
        // A path over a nonexistent link decodes through `Network`'s serde
        // derive; the restore path must refuse it as a typed error.
        let corrupted = snapshot.replace("\"links\":[0,1]", "\"links\":[0,99]");
        assert_ne!(corrupted, snapshot, "fixture must actually corrupt a path");
        let Err(err) = registry.restore_tenant(TenantId::new("evil").unwrap(), &corrupted) else {
            panic!("corrupted snapshot must be refused");
        };
        assert!(
            err.to_string().contains("snapshot topology invalid"),
            "{err}"
        );
        // No tenant was registered and no lock was poisoned: fleet-wide
        // endpoints and per-tenant reads keep answering.
        assert!(registry.lookup(&TenantId::new("evil").unwrap()).is_none());
        assert_eq!(registry.fleet_stats().tenants, 1);
        assert_eq!(registry.list().len(), 1);
        assert_eq!(registry.metrics(None).per_tenant.len(), 1);
        assert!(registry.topology_info(&healthy).is_ok());
    }

    #[test]
    fn oversized_documents_and_full_libraries_are_refused() {
        let registry = EngineRegistry::new(RegistryConfig {
            max_topologies: 1,
            max_topology_links: 4,
            max_topology_paths: 3,
            ..RegistryConfig::default()
        });
        let doc = TopologyDoc::from_network(tomo_graph::toy::fig1_case1());
        registry.upload_topology("first", doc.clone()).unwrap();
        // Library at cap: a new name is refused, the stored name stays
        // idempotent.
        let other = TopologyDoc::from_network(tomo_graph::toy::fig1_case2());
        let err = registry.upload_topology("second", other).unwrap_err();
        assert!(err.to_string().contains("library is full"), "{err}");
        assert!(registry.upload_topology("first", doc.clone()).is_ok());
        assert_eq!(registry.uploaded_topology_names(), vec!["first"]);

        // Documents above the link/path caps are refused in O(1), both as
        // uploads and as inline `Create` sources.
        let tight = EngineRegistry::new(RegistryConfig {
            max_topology_links: 3,
            ..RegistryConfig::default()
        });
        let err = tight.upload_topology("big", doc.clone()).unwrap_err();
        assert!(err.to_string().contains("above the daemon cap"), "{err}");
        let err = tight
            .resolve_topology_source(&TopologySource::Inline(doc), 0)
            .unwrap_err();
        assert!(err.to_string().contains("above the daemon cap"), "{err}");
    }

    #[test]
    fn topology_info_reports_alias_sets_and_drift_state() {
        let registry = EngineRegistry::new(RegistryConfig::default());
        let entry = registry
            .create(TenantId::new("as-1").unwrap(), toy_session())
            .unwrap();
        let info = registry.topology_info(&entry).unwrap();
        assert_eq!(info.report.links, 4);
        assert_eq!(info.alias.num_links, 4);
        assert_eq!(info.rebuild, tomo_core::RebuildPolicy::Manual);
        assert_eq!(info.drift.total_events(), 0);
        assert!(info.recent_events.is_empty());
    }

    #[test]
    fn auto_snapshot_fires_on_the_configured_cadence() {
        let dir = std::env::temp_dir()
            .join(format!("tomo-registry-auto-{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let registry = EngineRegistry::new(RegistryConfig {
            snapshot_dir: Some(dir.clone()),
            snapshot_every: Some(25),
            ..RegistryConfig::default()
        });
        let entry = registry
            .create(TenantId::new("as-1").unwrap(), toy_session())
            .unwrap();
        registry.observe(&entry, intervals(10, 0));
        registry.flush(&entry);
        assert_eq!(registry.stats(&entry).snapshots_written, 0);
        registry.observe(&entry, intervals(20, 10));
        registry.flush(&entry);
        assert_eq!(registry.stats(&entry).snapshots_written, 1);
        assert!(std::path::Path::new(&format!("{dir}/as-1.json")).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
