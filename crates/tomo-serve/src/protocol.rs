//! The daemon's versioned multi-tenant wire protocol (v2): JSON lines over
//! TCP.
//!
//! Framing is the shared [`tomo_core::jsonl`] convention — exactly one JSON
//! object per `\n`-terminated line, no embedded newlines. Every request line
//! produces exactly one response line, in order. Each line is a versioned
//! *envelope* naming the tenant it addresses:
//!
//! ```text
//! request-line  = {"v": 2, "tenant": "as-7018", "deadline_ms": n?, "req": REQUEST}
//! response-line = {"v": 2, "tenant": "as-7018", "resp": RESPONSE}
//! ```
//!
//! `tenant` may be omitted after an `Attach` bound the connection to a
//! default tenant, and is ignored by the fleet-level requests
//! (`ListTenants`, `FleetStats`, `Metrics`, `SnapshotAll`, `Shutdown`).
//! `deadline_ms` is an optional per-request deadline: if the request is
//! still queued when the deadline expires, it is answered with
//! `Error{kind: Timeout}` **without being executed** (checked at dequeue,
//! so stale work never reaches the session). The request grammar
//! (externally tagged, as rendered by the serde shim):
//!
//! ```text
//! REQUEST = lifecycle | topology | ingest | query | fleet
//! lifecycle:
//!   {"Create": {"topology": TOPOLOGY, "seed": n?,
//!               "estimator": name?, "window": n?, "decay": f?, "options": {...}?,
//!               "admission": "Busy"|"ShedOldest"?, "rebuild": "manual"|"auto"?}}
//!   TOPOLOGY = "toy|brite-tiny|sparse-tiny|<uploaded-name>"
//!            | {"inline": TOPOLOGY_DOC}
//!   "Attach"                      bind the connection's default tenant
//!   "Drop"                        remove the tenant (final snapshot written)
//! topology:
//!   {"UploadTopology": {"name": "...", "topology": TOPOLOGY_DOC}}
//!   "TopologyInfo"                coverage report + alias sets + drift state
//!   TOPOLOGY_DOC = {"name": s?, "network": NETWORK, "link_metadata": [...]?}
//!                | NETWORK       (a bare serialized `Network` object)
//! ingest:
//!   {"Observe": {"congested": [pathIdx, ...]}}
//!   {"ObserveBatch": {"intervals": [[pathIdx, ...], ...]}}
//!   "Flush"                       block until the tenant's ingest queue drains
//! query:
//!   "Query"   {"Infer": {"congested": [...]}}   "Stats"   "Snapshot"
//!   {"Restore": {"snapshot": "<SessionSnapshot JSON>"}}   create-from-snapshot
//! fleet:
//!   "ListTenants"   "FleetStats"   "Metrics"   "SnapshotAll"   "Shutdown"
//!
//! RESPONSE = {"Created": {"links": n, "paths": n}}
//!          | {"Attached": {"links": n, "paths": n}}
//!          | "Dropped"
//!          | {"Accepted": {"ingested": n, "pending_batches": n}}
//!          | {"Busy": {"pending_batches": n, "bound": n}}
//!          | {"Flushed": {"intervals": n}}
//!          | {"Estimate": {"probabilities": [...], "identifiable": [...], "intervals": n}}
//!          | {"Inferred": {"links": [...]}}
//!          | {"Stats": {...}} | {"Fleet": {...}} | {"Tenants": {"tenants": [...]}}
//!          | {"Metrics": {...}}                  see [`MetricsReport`]
//!          | {"Snapshotted": {"path": "..."}}
//!          | {"TopologyAccepted": {"name": "...", "links": n, "paths": n, "hash": "fnv1a:..."}}
//!          | {"Topology": {"report": {...}, "alias": {...}, "rebuild": "manual"|"auto",
//!                          "drift": {...}, "recent_events": [...]}}
//!          | {"Restored": {"links": n, "paths": n, "intervals": n}}
//!          | {"Error": {"kind": KIND, "message": "..."}}
//!          | "Bye"
//!
//! KIND = "UnsupportedVersion" | "UnknownTenant" | "TenantExists"
//!      | "InvalidRequest" | "Unsupported" | "Overloaded" | "Timeout"
//!      | "Internal"
//! ```
//!
//! **Overload.** A daemon started with `--max-conns N` answers the
//! `N+1`-th concurrent connection with one
//! `{"Error": {"kind": "Overloaded", ...}}` envelope and closes it — an
//! explicit, typed reject on the accept path rather than a silent drop or
//! an unbounded accept queue. Load balancers (tomo-router) treat it as
//! "try again later / elsewhere".
//!
//! **Backpressure.** `Observe`/`ObserveBatch` *enqueue* onto the tenant's
//! bounded ingest queue; the refit happens asynchronously with respect to
//! the `Accepted` acknowledgement. Drain-on-first-enqueuer semantics: the
//! connection whose enqueue finds no active drainer folds the queue into
//! the session before its own response is written (so a lone synchronous
//! client pays its own ingest cost inline and never sees `Busy`), while
//! every other connection's observes return immediately. When the queue is
//! full the daemon answers `Busy` instead of buffering unboundedly —
//! clients should `Flush` (or back off) and retry. `Flush` is the barrier
//! that makes a following `Query` reflect everything previously accepted.
//!
//! **Admission policy.** A tenant created with
//! `"admission": "ShedOldest"` (or under a daemon started with
//! `--admission shed-oldest`) trades completeness for freshness: when its
//! ingest queue is full, the **oldest queued batch is dropped** to make
//! room and the new batch is `Accepted` — the response shape never changes,
//! and the drops are visible as `shed_batches`/`shed_intervals` in `Stats`
//! and `Metrics`. The default policy (`Busy`) keeps every accepted batch
//! and pushes the retry burden onto the client.
//!
//! **Topology lifecycle.** A tenant's topology can be a builtin generator
//! name, a previously `UploadTopology`-ed library name, or an inline
//! document — all three go through the same structural checker, so a
//! serving session never holds an unvalidated `Network`. `TopologyInfo`
//! returns what the identifiability null space says about the topology
//! (alias sets: links no probe can tell apart) plus the tenant's drift
//! state. The per-tenant drift monitor flags `LinkAppeared` /
//! `LinkDisappeared` / `PathSetChanged` mid-stream; counters surface in
//! `Stats` (session), `Metrics` (per-tenant rows) and `FleetStats`
//! (aggregate), and `"rebuild": "auto"` at create time additionally forces
//! a structural rebuild through the estimator's Algorithm-2 fold when
//! drift fires.
//!
//! **Observability.** `Metrics` (fleet-level) returns a [`MetricsReport`]:
//! per-tenant log-bucketed ingest/query latency histograms with derived
//! p50/p95/p99, queue depth and bound, and the admission counters
//! (busy/shed/timeout). The histograms are mergeable — the fleet router
//! fans `Metrics` out to every backend, merges the histograms bucketwise
//! and re-derives the quantiles, so fleet-level percentiles are exact with
//! respect to the bucketing (never an average of per-backend percentiles).
//!
//! **Migration from v1.** The v1 protocol (PR 3) had no envelope, a single
//! implicit topology and synchronous `Ack` responses carrying the refit
//! kind. A v1 line (any JSON without a `"v"` field, e.g. `"Query"` or
//! `{"Observe": ...}`) now yields `Error{kind: UnsupportedVersion}` with a
//! hint. Equivalents: wrap requests in the envelope, create/attach a tenant
//! first, read refit counters from `Stats`, and use `Flush` before
//! `Query` where v1 relied on `Ack` being synchronous.
//!
//! Path and link indices are the dense 0-based ids of the tenant's
//! topology; `probabilities[i]` is the congestion probability of link `i`.

use serde::{Deserialize, Serialize, Value};
use tomo_core::online::RefitCounts;
use tomo_core::{EstimatorOptions, SessionEstimate, SessionStats, TomoError};
use tomo_metrics::LatencySummary;
use tomo_topo::{
    AliasAnalysis, DriftCounters, DriftEvent, RebuildPolicy, TopologyDoc, TopologyReport,
};

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 2;

/// What a tenant's ingest queue does when it is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Reject the new batch with `Busy`; every accepted batch is kept
    /// (completeness over freshness). The default.
    #[default]
    Busy,
    /// Drop the **oldest queued batch** to make room and accept the new
    /// one (freshness over completeness); drops are counted as
    /// `shed_batches`/`shed_intervals`.
    ShedOldest,
}

impl std::str::FromStr for AdmissionPolicy {
    type Err = TomoError;

    /// Parses the CLI spelling (`busy` / `shed-oldest`).
    fn from_str(s: &str) -> Result<Self, TomoError> {
        match s {
            "busy" => Ok(AdmissionPolicy::Busy),
            "shed-oldest" => Ok(AdmissionPolicy::ShedOldest),
            other => Err(TomoError::InvalidConfig(format!(
                "unknown admission policy `{other}` (expected `busy` or `shed-oldest`)"
            ))),
        }
    }
}

/// Where a tenant's topology comes from: a name (builtin generator or a
/// previous [`Request::UploadTopology`]) or an inline document.
///
/// Wire form: a bare string (`"topology": "toy"` — byte-compatible with
/// every pre-topology client) or `{"inline": TOPOLOGY_DOC}` for an inline
/// upload-and-create in one request.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologySource {
    /// A named topology: one of the builtin generators, or the name of an
    /// uploaded document on this daemon.
    Named(String),
    /// An inline topology document, validated at create time.
    Inline(TopologyDoc),
}

impl Serialize for TopologySource {
    fn to_value(&self) -> Value {
        match self {
            TopologySource::Named(name) => Value::Str(name.clone()),
            TopologySource::Inline(doc) => {
                Value::Object(vec![("inline".to_string(), doc.to_value())])
            }
        }
    }
}

impl Deserialize for TopologySource {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::Str(name) => Ok(TopologySource::Named(name.clone())),
            Value::Object(_) => match v.get("inline") {
                Some(doc) => Ok(TopologySource::Inline(TopologyDoc::from_value(doc)?)),
                None => Err(serde::Error::msg(
                    "topology object must have an \"inline\" field (or pass a name string)",
                )),
            },
            other => Err(serde::Error::expected(
                "topology name or {\"inline\": ...}",
                other,
            )),
        }
    }
}

/// One client request (the `req` field of a request envelope).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Create a tenant monitoring a named or inline topology. The tenant
    /// id comes from the envelope.
    Create {
        /// Named topology (`toy`, `brite-tiny`, `sparse-tiny`, or an
        /// uploaded name) or `{"inline": ...}` document.
        topology: TopologySource,
        /// Topology generator seed (default 0; ignored for uploaded and
        /// inline topologies, which are already materialized).
        seed: Option<u64>,
        /// Registry estimator name (default `independence`).
        estimator: Option<String>,
        /// Rolling-window capacity (default unbounded).
        window: Option<usize>,
        /// Exponential decay factor `λ ∈ (0, 1)` (default none).
        decay: Option<f64>,
        /// Estimator construction options (default all-default).
        options: Option<EstimatorOptions>,
        /// Full-queue admission policy (default: the daemon's
        /// `--admission` setting, itself defaulting to `Busy`).
        admission: Option<AdmissionPolicy>,
        /// Drift-rebuild policy: `"auto"` forces a structural rebuild
        /// whenever the drift monitor fires (default `"manual"` — events
        /// are recorded only).
        rebuild: Option<RebuildPolicy>,
    },
    /// Bind the envelope's tenant as this connection's default tenant, so
    /// subsequent requests may omit the `tenant` field.
    Attach,
    /// Remove the tenant (a final snapshot is written when configured).
    Drop,
    /// Enqueue a single measurement interval given its congested paths.
    Observe {
        /// Dense indices of the paths observed congested this interval.
        congested: Vec<usize>,
    },
    /// Enqueue several consecutive intervals in one round trip.
    ObserveBatch {
        /// One congested-path list per interval, oldest first.
        intervals: Vec<Vec<usize>>,
    },
    /// Block until the tenant's ingest queue has fully drained.
    Flush,
    /// Fetch the tenant's current per-link congestion-probability estimate.
    Query,
    /// Boolean inference: which links were congested in an interval with
    /// the given congested paths (estimators with the inference capability).
    Infer {
        /// Dense indices of the congested paths of the interval.
        congested: Vec<usize>,
    },
    /// Fetch tenant statistics.
    Stats,
    /// Write the tenant's snapshot file.
    Snapshot,
    /// Create the envelope's tenant from an inline session snapshot (the
    /// receiving half of a tenant handoff: `Snapshot` on the old owner,
    /// `Restore` on the new one). Fails with `TenantExists` when the id is
    /// already registered.
    Restore {
        /// The `SessionSnapshot` JSON produced by a snapshot file.
        snapshot: String,
    },
    /// Validate an inline topology document and store it in the ring
    /// owner's topology library under `name`, for later
    /// `Create {"topology": name}` by the envelope's tenant. Re-uploading
    /// the same structure under the same name is idempotent; a different
    /// structure under an existing name is rejected.
    UploadTopology {
        /// Library name the document is stored under.
        name: String,
        /// The topology document (full or bare-network form).
        topology: TopologyDoc,
    },
    /// Topology facts of the envelope's tenant: the coverage report, the
    /// identifiability alias sets (mergeable link groups) and the drift
    /// state.
    TopologyInfo,
    /// List all tenants (fleet-level).
    ListTenants,
    /// Fetch daemon-wide statistics (fleet-level).
    FleetStats,
    /// Fetch the observability report (fleet-level): per-tenant latency
    /// histograms with p50/p95/p99, queue depths, admission counters.
    Metrics,
    /// Snapshot every tenant (fleet-level).
    SnapshotAll,
    /// Stop the daemon; all tenants are snapshotted when configured.
    Shutdown,
}

/// Machine-readable error taxonomy of the v2 protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The line was not a v2 envelope (v1 traffic lands here; see the
    /// module docs for the migration map).
    UnsupportedVersion,
    /// The addressed tenant does not exist (create or check the id).
    UnknownTenant,
    /// `Create` addressed a tenant id that already exists.
    TenantExists,
    /// The request was malformed or referenced invalid data (bad path
    /// index, bad tenant id, missing tenant field, unknown topology…).
    InvalidRequest,
    /// The tenant's estimator lacks the requested capability.
    Unsupported,
    /// The daemon is at its connection limit (`--max-conns`); sent once on
    /// a rejected connection before it is closed. Retry later or on
    /// another backend.
    Overloaded,
    /// The request's `deadline_ms` expired while it was still queued; it
    /// was discarded without being executed. Retry with a larger deadline
    /// or treat the result as stale.
    Timeout,
    /// The daemon failed internally (I/O, serialization).
    Internal,
}

/// Per-tenant statistics reported by [`Request::Stats`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// The tenant id.
    pub tenant: String,
    /// The underlying session statistics.
    pub session: SessionStats,
    /// Observe batches currently queued (not yet ingested).
    pub pending_batches: usize,
    /// The ingest-queue bound.
    pub queue_bound: usize,
    /// Observe requests rejected with `Busy` so far.
    pub busy_rejections: u64,
    /// Queued batches dropped by shed-oldest admission.
    pub shed_batches: u64,
    /// Intervals inside those dropped batches.
    pub shed_intervals: u64,
    /// Deadline-expired work discarded before execution.
    pub timeouts: u64,
    /// Ingest batches that failed after being accepted (internal errors).
    pub ingest_errors: u64,
    /// Snapshot files written for this tenant.
    pub snapshots_written: u64,
}

/// One row of [`Response::Tenants`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantSummary {
    /// The tenant id.
    pub tenant: String,
    /// Registry name of the serving estimator.
    pub estimator: String,
    /// Links in the tenant's topology.
    pub links: usize,
    /// Paths in the tenant's topology.
    pub paths: usize,
    /// Lifetime intervals ingested.
    pub intervals: u64,
}

/// Per-tenant load row of [`FleetStats`]: the two signals a balancer needs
/// to spot a hot tenant (queued ingest it has not folded yet, and how many
/// connections are attached to it right now).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantLoad {
    /// The tenant id.
    pub tenant: String,
    /// Observe batches currently queued (not yet ingested).
    pub pending_batches: usize,
    /// Connections currently attached to this tenant.
    pub live_conns: u64,
}

/// Daemon-wide statistics reported by [`Request::FleetStats`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Number of tenants currently registered.
    pub tenants: usize,
    /// Number of registry shards.
    pub shards: usize,
    /// Lifetime intervals ingested across all tenants.
    pub total_ingested: u64,
    /// `Busy` rejections across all tenants.
    pub busy_rejections: u64,
    /// Batches dropped by shed-oldest admission across all tenants.
    pub shed_batches: u64,
    /// Deadline expiries across all tenants.
    pub timeouts: u64,
    /// Aggregate refit counters across all tenants.
    pub refits: RefitCounts,
    /// Aggregate topology-drift counters across all tenants.
    pub drift: DriftCounters,
    /// Connections currently open on this daemon.
    pub live_connections: u64,
    /// Per-tenant load rows, sorted by tenant id.
    pub per_tenant: Vec<TenantLoad>,
}

/// One row of [`MetricsReport`]: everything the observability layer knows
/// about one tenant.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantMetrics {
    /// The tenant id.
    pub tenant: String,
    /// Lifetime intervals folded into the session (survives restore).
    pub ingested_intervals: u64,
    /// Observe batches currently queued (not yet ingested).
    pub queue_depth: usize,
    /// The ingest-queue bound.
    pub queue_bound: usize,
    /// The tenant's full-queue admission policy.
    pub admission: AdmissionPolicy,
    /// Observe requests rejected with `Busy`.
    pub busy_rejections: u64,
    /// Queued batches dropped by shed-oldest admission.
    pub shed_batches: u64,
    /// Intervals inside those dropped batches.
    pub shed_intervals: u64,
    /// Deadline-expired work discarded before execution.
    pub timeouts: u64,
    /// Ingest-fold latency (per batch), with p50/p95/p99 and the full
    /// mergeable histogram.
    pub ingest: LatencySummary,
    /// Read-path latency (`Query`/`Infer`), same shape.
    pub query: LatencySummary,
    /// Topology drift: links that newly entered the active set.
    pub drift_links_appeared: u64,
    /// Topology drift: links that aged out of the active set.
    pub drift_links_disappeared: u64,
    /// Topology drift: measurement path-set size changes.
    pub drift_path_set_changes: u64,
}

/// The topology facts returned by [`Request::TopologyInfo`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologyInfoReport {
    /// Structural coverage report of the tenant's topology (incl. the
    /// canonical dedup hash).
    pub report: TopologyReport,
    /// Identifiability alias analysis: which links can never be told apart
    /// under the current path set, and the probe that would split each
    /// group.
    pub alias: AliasAnalysis,
    /// The tenant's drift-rebuild policy.
    pub rebuild: RebuildPolicy,
    /// Lifetime drift counters.
    pub drift: DriftCounters,
    /// Bounded ring of recent drift events, oldest first.
    pub recent_events: Vec<DriftEvent>,
}

/// Connection-layer I/O totals of one daemon (from the `tomo-net` event
/// loop). Absent when the registry is queried without a network front end
/// (e.g. in-process tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetMetrics {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections rejected at the accept limit.
    pub rejected_overload: u64,
    /// Request lines framed in.
    pub lines_in: u64,
    /// Response lines queued out.
    pub lines_out: u64,
    /// Bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
}

/// The observability report returned by [`Request::Metrics`]. Reports from
/// several backends merge: counters add, histograms merge bucketwise with
/// quantiles re-derived (`sum of backend ingested_intervals == merged
/// total_intervals` is the invariant CI checks through the router).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Lifetime intervals ingested across all tenants (= the sum of the
    /// per-tenant `ingested_intervals`).
    pub total_intervals: u64,
    /// `Busy` rejections across all tenants.
    pub busy_rejections: u64,
    /// Shed batches across all tenants.
    pub shed_batches: u64,
    /// Deadline expiries across all tenants.
    pub timeouts: u64,
    /// Connection-layer totals (absent without a network front end; a
    /// router merge sums the backends that reported one).
    pub net: Option<NetMetrics>,
    /// Per-tenant rows, sorted by tenant id.
    pub per_tenant: Vec<TenantMetrics>,
}

/// One daemon response (the `resp` field of a response envelope).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Tenant created.
    Created {
        /// Links in the tenant's topology.
        links: usize,
        /// Paths in the tenant's topology.
        paths: usize,
    },
    /// Connection bound to the tenant.
    Attached {
        /// Links in the tenant's topology.
        links: usize,
        /// Paths in the tenant's topology.
        paths: usize,
    },
    /// Tenant removed.
    Dropped,
    /// Observation batch accepted onto the tenant's ingest queue. The
    /// refit is asynchronous relative to this acknowledgement (though the
    /// connection that tripped the drain performs it before responding);
    /// `Flush` before `Query` to observe the batch's effect.
    Accepted {
        /// Intervals accepted by this request.
        ingested: usize,
        /// Batches queued behind this one (including it).
        pending_batches: usize,
    },
    /// The tenant's ingest queue is full; retry after backing off (or
    /// `Flush`). Overload degrades explicitly instead of queueing
    /// unboundedly on the socket.
    Busy {
        /// Batches currently queued.
        pending_batches: usize,
        /// The queue bound.
        bound: usize,
    },
    /// The tenant's ingest queue is drained.
    Flushed {
        /// Lifetime interval count after the drain.
        intervals: u64,
    },
    /// The tenant's current estimate.
    Estimate(SessionEstimate),
    /// Inferred congested links for one interval.
    Inferred {
        /// Dense link indices.
        links: Vec<usize>,
    },
    /// Tenant statistics.
    Stats(TenantStats),
    /// Daemon-wide statistics.
    Fleet(FleetStats),
    /// The observability report ([`Request::Metrics`]).
    Metrics(MetricsReport),
    /// The tenant listing.
    Tenants {
        /// One row per tenant, sorted by id.
        tenants: Vec<TenantSummary>,
    },
    /// Snapshot written.
    Snapshotted {
        /// Path of the snapshot file.
        path: String,
    },
    /// Topology document validated and stored ([`Request::UploadTopology`]).
    TopologyAccepted {
        /// Library name the document was stored under.
        name: String,
        /// Links in the validated topology.
        links: usize,
        /// Paths in the validated topology.
        paths: usize,
        /// Canonical structure hash (uploads deduplicate on it).
        hash: String,
    },
    /// Topology facts of a tenant ([`Request::TopologyInfo`]).
    Topology(TopologyInfoReport),
    /// Tenant created from an inline snapshot ([`Request::Restore`]).
    Restored {
        /// Links in the restored topology.
        links: usize,
        /// Paths in the restored topology.
        paths: usize,
        /// Lifetime intervals the restored session had already ingested.
        intervals: u64,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Machine-readable cause.
        kind: ErrorKind,
        /// Human-readable cause.
        message: String,
    },
    /// Acknowledges a shutdown; the daemon stops accepting connections.
    Bye,
}

impl Response {
    /// Builds an error response from a [`TomoError`], mapping the typed
    /// variants onto the wire taxonomy.
    pub fn from_error(e: &TomoError) -> Self {
        let kind = match e {
            TomoError::UnknownEstimator { .. } | TomoError::InvalidConfig(_) => {
                ErrorKind::InvalidRequest
            }
            TomoError::UnsupportedCapability { .. } => ErrorKind::Unsupported,
            TomoError::NotFitted { .. } => ErrorKind::InvalidRequest,
            _ => ErrorKind::Internal,
        };
        Response::Error {
            kind,
            message: e.to_string(),
        }
    }

    /// An error response with an explicit kind.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Self {
        Response::Error {
            kind,
            message: message.into(),
        }
    }
}

/// A request envelope (one request line).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Protocol version; must be [`PROTOCOL_VERSION`].
    pub v: u64,
    /// The addressed tenant (optional for fleet-level requests and on
    /// connections bound via `Attach`).
    pub tenant: Option<String>,
    /// Optional per-request deadline, milliseconds from the moment the
    /// daemon frames the line. A request whose elapsed queue time reaches
    /// the deadline is answered `Error{kind: Timeout}` **without being
    /// executed** (so `deadline_ms: 0` deterministically times out —
    /// useful as a liveness probe that must never cost session work).
    pub deadline_ms: Option<u64>,
    /// The request.
    pub req: Request,
}

/// A response envelope (one response line).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Protocol version (always [`PROTOCOL_VERSION`]).
    pub v: u64,
    /// The tenant the response concerns, echoed back when known.
    pub tenant: Option<String>,
    /// The response.
    pub resp: Response,
}

impl ResponseEnvelope {
    /// Wraps a response for the given tenant.
    pub fn new(tenant: Option<String>, resp: Response) -> Self {
        Self {
            v: PROTOCOL_VERSION,
            tenant,
            resp,
        }
    }
}

/// Encodes a protocol message as one JSON line (no trailing newline).
pub fn encode<T: Serialize>(message: &T) -> String {
    tomo_core::jsonl::encode_line(message)
}

/// Decodes a protocol message from one JSON line.
pub fn decode<T: Deserialize>(line: &str) -> Result<T, TomoError> {
    tomo_core::jsonl::decode_line(line)
}

/// Decodes a request line with version discrimination: malformed JSON and
/// bad envelopes map to [`ErrorKind::InvalidRequest`] /
/// [`ErrorKind::UnsupportedVersion`] responses the caller can send back
/// directly (boxed — the happy path shouldn't carry the error's size).
pub fn decode_request(line: &str) -> Result<RequestEnvelope, Box<Response>> {
    let error = |kind, message: String| Box::new(Response::error(kind, message));
    let value: serde::Value = serde_json::parse(line.trim())
        .map_err(|e| error(ErrorKind::InvalidRequest, format!("malformed JSON: {e}")))?;
    match value.get("v").and_then(|v| v.as_u64()) {
        Some(PROTOCOL_VERSION) => {}
        Some(other) => {
            return Err(error(
                ErrorKind::UnsupportedVersion,
                format!("protocol version {other} is not supported (this daemon speaks v{PROTOCOL_VERSION})"),
            ))
        }
        None => {
            return Err(error(
                ErrorKind::UnsupportedVersion,
                format!(
                    "missing envelope: expected {{\"v\": {PROTOCOL_VERSION}, \"tenant\": ..., \
                     \"req\": ...}} (v1 lines are no longer accepted; see the README migration \
                     note)"
                ),
            ))
        }
    }
    RequestEnvelope::from_value(&value)
        .map_err(|e| error(ErrorKind::InvalidRequest, format!("bad envelope: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        let requests = vec![
            Request::Create {
                topology: TopologySource::Named("brite-tiny".into()),
                seed: Some(3),
                estimator: Some("correlation-complete".into()),
                window: Some(256),
                decay: Some(0.97),
                options: Some(EstimatorOptions::default()),
                admission: Some(AdmissionPolicy::ShedOldest),
                rebuild: Some(RebuildPolicy::Auto),
            },
            Request::Create {
                topology: TopologySource::Inline(TopologyDoc::from_network(
                    tomo_graph::toy::fig1_case1(),
                )),
                seed: None,
                estimator: None,
                window: None,
                decay: None,
                options: None,
                admission: None,
                rebuild: None,
            },
            Request::UploadTopology {
                name: "measured-1".into(),
                topology: TopologyDoc::from_network(tomo_graph::toy::fig1_case2()),
            },
            Request::TopologyInfo,
            Request::Attach,
            Request::Drop,
            Request::Observe {
                congested: vec![0, 3],
            },
            Request::ObserveBatch {
                intervals: vec![vec![1], vec![], vec![0, 2]],
            },
            Request::Flush,
            Request::Query,
            Request::Infer { congested: vec![2] },
            Request::Stats,
            Request::Snapshot,
            Request::Restore {
                snapshot: "{\"estimator\":\"independence\"}".into(),
            },
            Request::ListTenants,
            Request::FleetStats,
            Request::Metrics,
            Request::SnapshotAll,
            Request::Shutdown,
        ];
        for (i, req) in requests.into_iter().enumerate() {
            let envelope = RequestEnvelope {
                v: PROTOCOL_VERSION,
                tenant: Some("as-7018".into()),
                deadline_ms: if i % 2 == 0 { Some(250) } else { None },
                req,
            };
            let line = encode(&envelope);
            assert!(!line.contains('\n'));
            let back = decode_request(&line).unwrap();
            assert_eq!(back, envelope);
        }
    }

    #[test]
    fn responses_round_trip_through_the_wire_format() {
        let responses = vec![
            Response::Created { links: 4, paths: 3 },
            Response::Attached { links: 4, paths: 3 },
            Response::Dropped,
            Response::Accepted {
                ingested: 10,
                pending_batches: 2,
            },
            Response::Busy {
                pending_batches: 64,
                bound: 64,
            },
            Response::Flushed { intervals: 320 },
            Response::Estimate(SessionEstimate {
                probabilities: vec![0.25, 0.0],
                identifiable: vec![true, false],
                intervals: 320,
            }),
            Response::Inferred { links: vec![4, 7] },
            Response::Stats(TenantStats {
                tenant: "as-7018".into(),
                session: SessionStats {
                    estimator: "Online-Independence".into(),
                    links: 4,
                    paths: 3,
                    window_len: 60,
                    window_capacity: Some(60),
                    decay: Some(0.97),
                    total_ingested: 320,
                    refits: RefitCounts {
                        incremental: 30,
                        full: 2,
                        basis_rebuilds: 0,
                    },
                    drift: DriftCounters {
                        links_appeared: 2,
                        links_disappeared: 1,
                        path_set_changes: 0,
                        auto_rebuilds: 1,
                    },
                },
                pending_batches: 1,
                queue_bound: 64,
                busy_rejections: 7,
                shed_batches: 3,
                shed_intervals: 30,
                timeouts: 2,
                ingest_errors: 0,
                snapshots_written: 1,
            }),
            Response::Fleet(FleetStats {
                tenants: 3,
                shards: 8,
                total_ingested: 960,
                busy_rejections: 7,
                shed_batches: 3,
                timeouts: 2,
                refits: RefitCounts::default(),
                drift: DriftCounters::default(),
                live_connections: 12,
                per_tenant: vec![TenantLoad {
                    tenant: "as-7018".into(),
                    pending_batches: 2,
                    live_conns: 5,
                }],
            }),
            Response::Metrics(MetricsReport {
                total_intervals: 960,
                busy_rejections: 7,
                shed_batches: 3,
                timeouts: 2,
                net: Some(NetMetrics {
                    accepted: 1000,
                    rejected_overload: 4,
                    lines_in: 5000,
                    lines_out: 5000,
                    bytes_in: 1 << 20,
                    bytes_out: 1 << 21,
                }),
                per_tenant: vec![TenantMetrics {
                    tenant: "as-7018".into(),
                    ingested_intervals: 960,
                    queue_depth: 2,
                    queue_bound: 64,
                    admission: AdmissionPolicy::ShedOldest,
                    busy_rejections: 7,
                    shed_batches: 3,
                    shed_intervals: 30,
                    timeouts: 2,
                    ingest: {
                        let mut h = tomo_metrics::HistogramSnapshot::new();
                        for ns in [6_000, 7_000, 200_000] {
                            h.record(ns);
                        }
                        LatencySummary::from_snapshot(h)
                    },
                    query: LatencySummary::default(),
                    drift_links_appeared: 2,
                    drift_links_disappeared: 1,
                    drift_path_set_changes: 0,
                }],
            }),
            Response::Tenants {
                tenants: vec![TenantSummary {
                    tenant: "as-7018".into(),
                    estimator: "independence".into(),
                    links: 4,
                    paths: 3,
                    intervals: 320,
                }],
            },
            Response::Snapshotted {
                path: "/tmp/snapshots/as-7018.json".into(),
            },
            Response::TopologyAccepted {
                name: "measured-1".into(),
                links: 4,
                paths: 3,
                hash: "fnv1a:0123456789abcdef".into(),
            },
            Response::Topology(TopologyInfoReport {
                report: TopologyDoc::from_network(tomo_graph::toy::fig1_case1())
                    .validate()
                    .unwrap(),
                alias: AliasAnalysis::analyze(&tomo_graph::toy::fig1_case1()),
                rebuild: RebuildPolicy::Auto,
                drift: DriftCounters {
                    links_appeared: 1,
                    links_disappeared: 0,
                    path_set_changes: 0,
                    auto_rebuilds: 1,
                },
                recent_events: vec![DriftEvent {
                    kind: tomo_topo::DriftKind::LinkAppeared,
                    links: vec![3],
                    paths: 3,
                    at_interval: 128,
                }],
            }),
            Response::Restored {
                links: 4,
                paths: 3,
                intervals: 320,
            },
            Response::error(ErrorKind::UnknownTenant, "no tenant `x`"),
            Response::error(ErrorKind::Overloaded, "connection limit reached"),
            Response::error(ErrorKind::Timeout, "deadline expired after 5 ms in queue"),
            Response::Bye,
        ];
        for resp in responses {
            let envelope = ResponseEnvelope::new(Some("as-7018".into()), resp);
            let back: ResponseEnvelope = decode(&encode(&envelope)).unwrap();
            assert_eq!(back, envelope);
        }
    }

    /// Unwraps the error response of a rejected request line.
    fn rejected(line: &str) -> (ErrorKind, String) {
        match *decode_request(line).expect_err("line must be rejected") {
            Response::Error { kind, message } => (kind, message),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn version_discrimination_matches_the_taxonomy() {
        // Not JSON at all.
        assert_eq!(rejected("{nope").0, ErrorKind::InvalidRequest);
        // Valid JSON, no envelope: v1 traffic.
        for v1_line in ["\"Query\"", "{\"Observe\": {\"congested\": [0]}}"] {
            let (kind, message) = rejected(v1_line);
            assert_eq!(kind, ErrorKind::UnsupportedVersion);
            assert!(message.contains("v1"), "{message}");
        }
        // Wrong version number.
        let (kind, message) = rejected("{\"v\": 3, \"req\": \"Query\"}");
        assert_eq!(kind, ErrorKind::UnsupportedVersion);
        assert!(message.contains("3"), "{message}");
        // Right version, bad request.
        assert_eq!(
            rejected("{\"v\": 2, \"req\": \"Frobnicate\"}").0,
            ErrorKind::InvalidRequest
        );
        // Tenant and deadline omitted are fine at the envelope level.
        let envelope = decode_request("{\"v\": 2, \"req\": \"Query\"}").unwrap();
        assert_eq!(envelope.tenant, None);
        assert_eq!(envelope.deadline_ms, None);
        assert_eq!(envelope.req, Request::Query);
        let envelope =
            decode_request("{\"v\": 2, \"deadline_ms\": 40, \"req\": \"Query\"}").unwrap();
        assert_eq!(envelope.deadline_ms, Some(40));
    }

    #[test]
    fn topology_source_wire_forms_are_backward_compatible() {
        // Pre-topology clients send a bare string; it must still parse and
        // Named must serialize back to exactly that shape.
        let line = r#"{"v": 2, "tenant": "t", "req": {"Create": {"topology": "toy"}}}"#;
        let envelope = decode_request(line).unwrap();
        match envelope.req {
            Request::Create {
                topology, rebuild, ..
            } => {
                assert_eq!(topology, TopologySource::Named("toy".into()));
                assert_eq!(rebuild, None);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            serde_json::to_string(&TopologySource::Named("toy".into())).unwrap(),
            "\"toy\""
        );
        // An inline document accepts the bare-network form.
        let network_json = serde_json::to_string(&tomo_graph::toy::fig1_case1()).unwrap();
        let line = format!(
            r#"{{"v": 2, "tenant": "t", "req": {{"Create": {{"topology": {{"inline": {network_json}}}, "rebuild": "auto"}}}}}}"#
        );
        let envelope = decode_request(&line).unwrap();
        match envelope.req {
            Request::Create {
                topology: TopologySource::Inline(doc),
                rebuild,
                ..
            } => {
                assert_eq!(doc.network.num_links(), 4);
                assert_eq!(rebuild, Some(RebuildPolicy::Auto));
            }
            other => panic!("{other:?}"),
        }
        // A topology object without "inline" is a typed parse error.
        let line = r#"{"v": 2, "req": {"Create": {"topology": {"file": "x"}}}}"#;
        assert!(decode_request(line).is_err());
    }

    #[test]
    fn admission_policies_parse_from_cli_spellings() {
        assert_eq!(
            "busy".parse::<AdmissionPolicy>().unwrap(),
            AdmissionPolicy::Busy
        );
        assert_eq!(
            "shed-oldest".parse::<AdmissionPolicy>().unwrap(),
            AdmissionPolicy::ShedOldest
        );
        assert!("drop-newest".parse::<AdmissionPolicy>().is_err());
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::Busy);
    }

    #[test]
    fn tomo_errors_map_onto_the_wire_taxonomy() {
        let unsupported = Response::from_error(&TomoError::UnsupportedCapability {
            estimator: "Online-Independence".into(),
            capability: "per-interval inference",
        });
        assert!(matches!(
            unsupported,
            Response::Error {
                kind: ErrorKind::Unsupported,
                ..
            }
        ));
        let invalid = Response::from_error(&TomoError::InvalidConfig("bad".into()));
        assert!(matches!(
            invalid,
            Response::Error {
                kind: ErrorKind::InvalidRequest,
                ..
            }
        ));
        let internal = Response::from_error(&TomoError::Io("disk on fire".into()));
        assert!(matches!(
            internal,
            Response::Error {
                kind: ErrorKind::Internal,
                ..
            }
        ));
    }
}
