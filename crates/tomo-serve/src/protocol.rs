//! The daemon's wire protocol: JSON lines over TCP.
//!
//! Framing is the shared [`tomo_core::jsonl`] convention — exactly one JSON
//! object per `\n`-terminated line, no embedded newlines. Every request line
//! produces exactly one response line, in order. The grammar (externally
//! tagged, as rendered by the serde shim):
//!
//! ```text
//! request  = observe | observe-batch | query | infer | stats | snapshot | shutdown
//! observe        = {"Observe": {"congested": [pathIdx, ...]}}
//! observe-batch  = {"ObserveBatch": {"intervals": [[pathIdx, ...], ...]}}
//! query          = "Query"
//! infer          = {"Infer": {"congested": [pathIdx, ...]}}
//! stats          = "Stats"
//! snapshot       = "Snapshot"
//! shutdown       = "Shutdown"
//!
//! response = ack | estimate | inferred | stats | snapshotted | error | bye
//! ack            = {"Ack": {"ingested": n, "refit": "Incremental"|"Full", "intervals": n}}
//! estimate       = {"Estimate": {"probabilities": [f, ...], "identifiable": [b, ...],
//!                   "intervals": n}}
//! inferred       = {"Inferred": {"links": [linkIdx, ...]}}
//! stats          = {"StatsReport": { ... see ServeStats ... }}
//! snapshotted    = {"Snapshotted": {"path": "..."}}
//! error          = {"Error": {"message": "..."}}
//! bye            = "Bye"
//! ```
//!
//! Path and link indices are the dense 0-based ids of the daemon's
//! topology; `probabilities[i]` is the congestion probability of link `i`.

use serde::{Deserialize, Serialize};
use tomo_core::online::RefitCounts;
use tomo_core::{Refit, TomoError};

/// One client request (one JSON line).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Ingest a single measurement interval given its congested paths.
    Observe {
        /// Dense indices of the paths observed congested this interval.
        congested: Vec<usize>,
    },
    /// Ingest several consecutive intervals in one round trip.
    ObserveBatch {
        /// One congested-path list per interval, oldest first.
        intervals: Vec<Vec<usize>>,
    },
    /// Fetch the current per-link congestion-probability estimate.
    Query,
    /// Boolean inference: which links were congested in an interval with
    /// the given congested paths (estimators with the inference capability).
    Infer {
        /// Dense indices of the congested paths of the interval.
        congested: Vec<usize>,
    },
    /// Fetch daemon statistics.
    Stats,
    /// Write a snapshot to the daemon's configured snapshot path.
    Snapshot,
    /// Stop the daemon (a final snapshot is written when configured).
    Shutdown,
}

/// Daemon statistics reported by [`Request::Stats`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Display name of the serving estimator.
    pub estimator: String,
    /// Number of links in the served topology.
    pub links: usize,
    /// Number of measurement paths in the served topology.
    pub paths: usize,
    /// Intervals currently retained in the rolling window.
    pub window_len: usize,
    /// Window capacity (`null` = unbounded).
    pub window_capacity: Option<usize>,
    /// Total intervals ingested over the daemon's lifetime.
    pub total_ingested: u64,
    /// Incremental / full refit counters.
    pub refits: RefitCounts,
    /// Snapshots written so far.
    pub snapshots_written: u64,
}

/// One daemon response (one JSON line).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Observation batch accepted.
    Ack {
        /// Intervals ingested by this request.
        ingested: usize,
        /// Whether the refit was incremental or full.
        refit: Refit,
        /// Lifetime interval count after the ingest.
        intervals: u64,
    },
    /// The current estimate.
    Estimate {
        /// `probabilities[i]` = congestion probability of link `i`.
        probabilities: Vec<f64>,
        /// Whether each link's probability is identifiable from the data.
        identifiable: Vec<bool>,
        /// Intervals the estimate is based on.
        intervals: u64,
    },
    /// Inferred congested links for one interval.
    Inferred {
        /// Dense link indices.
        links: Vec<usize>,
    },
    /// Daemon statistics.
    StatsReport(ServeStats),
    /// Snapshot written.
    Snapshotted {
        /// Path of the snapshot file.
        path: String,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Acknowledges a shutdown; the daemon stops accepting connections.
    Bye,
}

impl Response {
    /// Builds an error response from any [`TomoError`].
    pub fn from_error(e: &TomoError) -> Self {
        Response::Error {
            message: e.to_string(),
        }
    }
}

/// Encodes a protocol message as one JSON line (no trailing newline).
pub fn encode<T: Serialize>(message: &T) -> String {
    tomo_core::jsonl::encode_line(message)
}

/// Decodes a protocol message from one JSON line.
pub fn decode<T: Deserialize>(line: &str) -> Result<T, TomoError> {
    tomo_core::jsonl::decode_line(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        let requests = vec![
            Request::Observe {
                congested: vec![0, 3],
            },
            Request::ObserveBatch {
                intervals: vec![vec![1], vec![], vec![0, 2]],
            },
            Request::Query,
            Request::Infer { congested: vec![2] },
            Request::Stats,
            Request::Snapshot,
            Request::Shutdown,
        ];
        for request in requests {
            let line = encode(&request);
            assert!(!line.contains('\n'));
            let back: Request = decode(&line).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_round_trip_through_the_wire_format() {
        let responses = vec![
            Response::Ack {
                ingested: 10,
                refit: Refit::Incremental,
                intervals: 320,
            },
            Response::Estimate {
                probabilities: vec![0.25, 0.0],
                identifiable: vec![true, false],
                intervals: 320,
            },
            Response::Inferred { links: vec![4, 7] },
            Response::StatsReport(ServeStats {
                estimator: "Online-Independence".into(),
                links: 4,
                paths: 3,
                window_len: 60,
                window_capacity: Some(60),
                total_ingested: 320,
                refits: RefitCounts {
                    incremental: 30,
                    full: 2,
                    basis_rebuilds: 0,
                },
                snapshots_written: 1,
            }),
            Response::Snapshotted {
                path: "/tmp/snap.json".into(),
            },
            Response::Error {
                message: "bad request".into(),
            },
            Response::Bye,
        ];
        for response in responses {
            let back: Response = decode(&encode(&response)).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn malformed_lines_decode_to_serde_errors() {
        assert!(matches!(
            decode::<Request>("{nope"),
            Err(TomoError::Serde(_))
        ));
    }
}
