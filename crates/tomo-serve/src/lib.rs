//! `tomo-serve` — the online multi-tenant streaming-tomography daemon.
//!
//! The paper's estimators are batch: every figure re-fits from a full
//! observation matrix. This crate turns the workspace into a long-running
//! service: one `std::net` TCP daemon serves a **fleet** of independently
//! administered topologies (tenants) on one port and one worker pool,
//! ingesting probe observations as JSON lines and answering
//! link-probability / boolean-inference queries from continuously updated
//! estimates — incrementally re-estimated through
//! [`tomo_core::online::OnlineEstimator`] whenever the equation structure
//! allows it. Each tenant is a [`tomo_core::TomographySession`] behind a
//! per-shard lock with a **bounded ingest queue**: overload answers `Busy`
//! instead of queueing unboundedly on the socket.
//!
//! * [`protocol`] — the versioned v2 wire protocol (envelopes, typed
//!   requests/responses, error taxonomy, grammar).
//! * [`registry`] — the sharded [`EngineRegistry`]: tenant lifecycle,
//!   bounded ingest queues, per-tenant snapshot files, fleet restore.
//! * [`server`] — the TCP accept loop on the `tomo-sweep` worker pool, plus
//!   the synchronous [`Client`].
//! * [`stream`] — helpers to record scenario simulations as observation
//!   JSONL files and replay them (used by the `probe-client` binary).
//!
//! Binaries: `serve` (the daemon) and `probe-client` (record / replay /
//! verify).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod registry;
pub mod server;
pub mod stream;

pub use protocol::{
    ErrorKind, FleetStats, Request, RequestEnvelope, Response, ResponseEnvelope, TenantStats,
    TenantSummary, TopologyInfoReport, TopologySource, PROTOCOL_VERSION,
};
pub use registry::{EngineRegistry, RegistryConfig, TenantEntry, TenantId};
pub use server::{Client, Server};

use tomo_core::TomoError;
use tomo_graph::Network;
use tomo_topology::{BriteConfig, BriteGenerator, SparseConfig, SparseGenerator};

/// The builtin generator names [`resolve_topology`] accepts.
pub const BUILTIN_TOPOLOGIES: [&str; 3] = ["toy", "brite-tiny", "sparse-tiny"];

/// Resolves a named topology for the daemon and the replay client.
///
/// Accepted names: `toy` (the Fig. 1 four-link fixture), `brite-tiny` /
/// `sparse-tiny` (the generators' CI-scale instances, seeded by `seed`).
/// Anything else errors with the accepted list and a pointer at the
/// topology-upload path (the registry additionally resolves uploaded
/// names before reporting this error).
pub fn resolve_topology(name: &str, seed: u64) -> Result<Network, TomoError> {
    match name.trim().to_ascii_lowercase().as_str() {
        "toy" => Ok(tomo_graph::toy::fig1_case1()),
        "brite-tiny" => Ok(BriteGenerator::new(BriteConfig::tiny(seed)).generate()?),
        "sparse-tiny" => Ok(SparseGenerator::new(SparseConfig::tiny(seed)).generate()?),
        other => Err(TomoError::InvalidConfig(format!(
            "unknown topology `{other}` (accepted names: {}; upload your own with \
             UploadTopology, or create from an inline document with \
             {{\"topology\": {{\"inline\": ...}}}})",
            BUILTIN_TOPOLOGIES.join(", ")
        ))),
    }
}

/// Loads a topology from a JSON file — either a bare serialized
/// [`Network`] or a full `TopologyDoc` — and runs it through the
/// structural checker, so a hand-edited file cannot smuggle an invalid
/// topology into a session.
pub fn load_topology_file(path: &str) -> Result<Network, TomoError> {
    let (network, _report) =
        tomo_topo::doc::load_and_validate(path).map_err(|e| TomoError::Serde(e.to_string()))?;
    Ok(network)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_topologies_resolve() {
        assert_eq!(resolve_topology("toy", 0).unwrap().num_links(), 4);
        assert!(resolve_topology("brite-tiny", 1).unwrap().num_links() > 4);
        assert!(resolve_topology("sparse-tiny", 1).unwrap().num_paths() > 0);
        assert!(resolve_topology("nope", 0).is_err());
    }

    #[test]
    fn topology_files_round_trip() {
        let net = resolve_topology("toy", 0).unwrap();
        let path = std::env::temp_dir()
            .join(format!("tomo-serve-topo-{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        std::fs::write(&path, serde_json::to_string(&net).unwrap()).unwrap();
        let back = load_topology_file(&path).unwrap();
        assert_eq!(back.num_links(), net.num_links());
        assert_eq!(back.num_paths(), net.num_paths());
        let _ = std::fs::remove_file(&path);
    }
}
