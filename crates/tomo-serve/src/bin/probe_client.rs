//! Observation-stream recorder and replay client for the daemon (v2).
//!
//! ```text
//! probe-client gen    --out obs.jsonl [--topology toy] [--seed N]
//!                     [--scenario drifting-loss] [--intervals 200]
//!                     [--probes N]
//! probe-client replay --in obs.jsonl [--addr 127.0.0.1:7070] [--tenant default]
//!                     [--create] [--batch 10] [--rate 0] [--query-every 50]
//!                     [--estimator independence] [--topology toy] [--seed N]
//!                     [--window N] [--decay L]
//!                     [--check-batch TOL] [--drop] [--shutdown]
//! probe-client swarm  --connections N [--idle M] [--addr 127.0.0.1:7070]
//!                     [--tenant swarm] [--create] [--topology toy] [--seed N]
//!                     [--scenario drifting-loss] [--intervals 200] [--batch 10]
//!                     [--estimator independence] [--shutdown]
//! probe-client chaos  --tenants N [--addr 127.0.0.1:7070] [--tenant chaos]
//!                     [--topology toy] [--seed N] [--scenario bursty-loss]
//!                     [--intervals 200] [--batch 10] [--query-every 20]
//!                     [--estimator independence] [--window N] [--decay L]
//!                     [--rebuild-auto] [--band B]
//!                     [--drop-rate R] [--reorder-rate R] [--dup-rate R]
//!                     [--delay-rate R] [--delay-ms MS] [--reset-rate R]
//!                     [--chaos-seed N] [--max-detection N] [--check-batch TOL]
//!                     [--shutdown]
//! probe-client metrics [--addr 127.0.0.1:7070] [--shutdown]
//! probe-client upload-topology --in net.json --name NAME [--addr 127.0.0.1:7070]
//! probe-client topology [--addr 127.0.0.1:7070] [--tenant default]
//! ```
//!
//! `gen` simulates a congestion scenario and records the per-interval
//! congested-path sets as JSON lines. `replay` streams a recorded file into
//! a running daemon as one tenant, at a configurable rate
//! (intervals/second; 0 = as fast as possible), printing the end-to-end
//! estimate drift (L∞ distance between consecutive queries). With
//! `--create` the tenant is created first (from `--topology/--seed/
//! --estimator/--window/--decay`); otherwise the client attaches to an
//! existing tenant. A `Busy` response makes the client flush (wait for the
//! tenant's ingest queue to drain) and retry — explicit backpressure
//! instead of unbounded socket queues. With `--check-batch`, the final
//! daemon estimate is compared against an offline batch fit of the same
//! estimator on the full stream and the exit code reports the verdict —
//! the tenant's window must be unbounded (or at least the stream length),
//! and decay off, for the comparison to be meaningful.
//!
//! `swarm` drives the C10K surface: it holds `--connections` concurrent
//! connections open against one endpoint (daemon or router). `--idle M` of
//! them are idle monitors — they `Attach` once and only `Query`
//! occasionally — while the remaining hot connections each own a tenant
//! (`NAME-hot-K`) and stream a generated scenario into it, absorbing
//! `Busy` via `Flush`+retry. Every connection is held for the whole run
//! (one connection per tenant, never reconnect-per-batch). The summary
//! line reports ingest throughput and monitor-query latency quantiles
//! alongside the **server-reported** dispatch quantiles from the daemon's
//! own histograms, so queue+network skew between what the client measures
//! and what the server executes is visible at a glance. The exit code
//! checks every hot tenant ingested the full stream.
//!
//! `chaos` is the fault-injection drill: it starts an in-process
//! [`tomo_chaos::ChaosProxy`] in front of the endpoint and drives
//! `--tenants` concurrent tenants through a chaos scenario
//! (Gilbert–Elliott bursts, SRLG cascades, flapping, diurnal load), each
//! over **two** connections — observation batches are written
//! *fire-and-forget* through the proxy (a drain thread counts the
//! responses, since injected reordering breaks request/response pairing),
//! while `Create`/`Flush`/`Query` travel on a clean control connection so
//! reaction sampling is never itself subject to chaos. An injected
//! connection reset is survived by reconnecting through the proxy and
//! resending the interrupted batch once. After the run each tenant's
//! sampled queries are scored against the simulated fault schedule
//! ([`tomo_metrics::score_reactions`]): one machine-readable JSON line per
//! `FaultEvent` (detection latency, time-to-reconverge, mid-fault error
//! integral) plus a per-fault-kind summary table. `--max-detection N`
//! makes the exit code enforce a detection-latency bound, and
//! `--check-batch TOL` verifies the final daemon estimate against an
//! offline fit of the post-fault window (meaningful with `--decay` or a
//! bounded `--window`, which keep the live estimate tracking the current
//! regime). Any undecodable response line fails the run: the proxy only
//! mutates *request* lines, so response-framing damage means the daemon
//! mishandled adversarial input.
//!
//! `metrics` fetches the fleet `Metrics` report and prints it as one JSON
//! line (machine-readable; CI parses it to assert counters are non-zero
//! and merge-consistent through the router).
//!
//! Topology lifecycle: `gen --dump-topology PATH` additionally writes the
//! generated network as a validated topology document; `replay`/`swarm`
//! accept `--topology-file PATH` to create tenants from that document
//! (inline upload through `Create`) instead of a generator name;
//! `upload-topology` stores a document in the daemon's library under
//! `--name`; and `topology` prints the attached tenant's `TopologyInfo`
//! report (coverage, alias sets, rebuild policy, drift events) as one
//! JSON line.

use std::process::exit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tomo_chaos::{ChaosConfig, ChaosProxy};
use tomo_core::{estimators, TomoError};
use tomo_graph::LinkId;
use tomo_metrics::{score_reactions, EstimateSample, FaultReaction, ReactionConfig};
use tomo_serve::protocol::Request;
use tomo_serve::stream::{
    decode_stream, encode_stream, observations_to_stream, record_scenario, stream_to_observations,
    ObservedInterval,
};
use tomo_serve::Client;
use tomo_serve::TopologySource;
use tomo_serve::{RequestEnvelope, Response, ResponseEnvelope, PROTOCOL_VERSION};
use tomo_sim::{
    LossModel, MeasurementMode, ScenarioConfig, ScenarioKind, SimulationConfig, Simulator,
};

fn usage() -> ! {
    eprintln!(
        "usage: probe-client gen    --out PATH [--topology NAME] [--seed N]\n\
         \x20                      [--scenario NAME] [--intervals N] [--probes N]\n\
         \x20      probe-client replay --in PATH [--addr HOST:PORT] [--tenant NAME]\n\
         \x20                      [--create] [--batch N] [--rate PER_SEC] [--query-every N]\n\
         \x20                      [--estimator NAME] [--topology NAME] [--seed N]\n\
         \x20                      [--window N] [--decay L]\n\
         \x20                      [--check-batch TOL] [--drop] [--shutdown]\n\
         \x20      probe-client swarm  --connections N [--idle M] [--addr HOST:PORT]\n\
         \x20                      [--tenant PREFIX] [--create] [--topology NAME] [--seed N]\n\
         \x20                      [--scenario NAME] [--intervals N] [--batch N]\n\
         \x20                      [--estimator NAME] [--shutdown]\n\
         \x20      probe-client chaos  --tenants N [--addr HOST:PORT] [--tenant PREFIX]\n\
         \x20                      [--topology NAME] [--seed N] [--scenario NAME]\n\
         \x20                      [--intervals N] [--batch N] [--query-every N]\n\
         \x20                      [--estimator NAME] [--window N] [--decay L]\n\
         \x20                      [--rebuild-auto] [--band B] [--drop-rate R]\n\
         \x20                      [--reorder-rate R] [--dup-rate R] [--delay-rate R]\n\
         \x20                      [--delay-ms MS] [--reset-rate R] [--chaos-seed N]\n\
         \x20                      [--max-detection N] [--check-batch TOL] [--shutdown]\n\
         \x20      probe-client metrics [--addr HOST:PORT] [--shutdown]\n\
         \x20      probe-client upload-topology --in PATH --name NAME [--addr HOST:PORT]\n\
         \x20      probe-client topology [--addr HOST:PORT] [--tenant NAME]\n\
         scenarios: random, concentrated, no-independence, no-stationarity,\n\
         \x20           sparse, drifting-loss, correlation-churn, bursty-loss,\n\
         \x20           link-cascade, flapping-links, diurnal-load\n\
         topology files: gen --dump-topology PATH writes one; replay/swarm\n\
         \x20           --topology-file PATH creates tenants from one"
    );
    exit(2);
}

fn parse_scenario(name: &str) -> Option<ScenarioKind> {
    Some(match name.trim().to_ascii_lowercase().as_str() {
        "random" | "random-congestion" => ScenarioKind::RandomCongestion,
        "concentrated" | "concentrated-congestion" => ScenarioKind::ConcentratedCongestion,
        "no-independence" => ScenarioKind::NoIndependence,
        "no-stationarity" => ScenarioKind::NoStationarity,
        "sparse" | "sparse-topology" => ScenarioKind::SparseTopology,
        "drifting-loss" | "drift" => ScenarioKind::DriftingLoss,
        "correlation-churn" | "churn" => ScenarioKind::CorrelationChurn,
        "bursty-loss" | "gilbert-elliott" | "ge" => ScenarioKind::BurstyLoss,
        "link-cascade" | "srlg" => ScenarioKind::LinkCascade,
        "flapping-links" | "flapping" => ScenarioKind::FlappingLinks,
        "diurnal-load" | "diurnal" => ScenarioKind::DiurnalLoad,
        _ => return None,
    })
}

#[derive(Default)]
struct Options {
    addr: String,
    tenant: String,
    create: bool,
    input: Option<String>,
    out: Option<String>,
    topology: String,
    seed: u64,
    scenario: String,
    intervals: usize,
    probes: Option<usize>,
    batch: usize,
    rate: f64,
    query_every: usize,
    window: Option<usize>,
    decay: Option<f64>,
    check_batch: Option<f64>,
    estimator: String,
    drop: bool,
    shutdown: bool,
    connections: usize,
    idle: usize,
    topology_file: Option<String>,
    dump_topology: Option<String>,
    name: Option<String>,
    tenants: usize,
    rebuild_auto: bool,
    band: f64,
    drop_rate: f64,
    reorder_rate: f64,
    dup_rate: f64,
    delay_rate: f64,
    delay_ms: u64,
    reset_rate: f64,
    chaos_seed: Option<u64>,
    max_detection: Option<usize>,
}

fn parse_options(argv: &[String]) -> Options {
    let mut o = Options {
        addr: "127.0.0.1:7070".into(),
        tenant: "default".into(),
        topology: "toy".into(),
        scenario: "drifting-loss".into(),
        intervals: 200,
        batch: 10,
        rate: 0.0,
        query_every: 50,
        estimator: "independence".into(),
        tenants: 3,
        band: 0.15,
        ..Options::default()
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => o.addr = value(&mut i),
            "--tenant" => o.tenant = value(&mut i),
            "--create" => o.create = true,
            "--in" => o.input = Some(value(&mut i)),
            "--out" => o.out = Some(value(&mut i)),
            "--topology" => o.topology = value(&mut i),
            "--seed" => o.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--scenario" => o.scenario = value(&mut i),
            "--intervals" => o.intervals = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--probes" => o.probes = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--batch" => o.batch = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--rate" => o.rate = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--query-every" => o.query_every = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--window" => o.window = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--decay" => o.decay = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--check-batch" => {
                o.check_batch = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--estimator" => o.estimator = value(&mut i),
            "--drop" => o.drop = true,
            "--shutdown" => o.shutdown = true,
            "--connections" => o.connections = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--idle" => o.idle = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--topology-file" => o.topology_file = Some(value(&mut i)),
            "--dump-topology" => o.dump_topology = Some(value(&mut i)),
            "--name" => o.name = Some(value(&mut i)),
            "--tenants" => o.tenants = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--rebuild-auto" => o.rebuild_auto = true,
            "--band" => o.band = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--drop-rate" => o.drop_rate = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--reorder-rate" => o.reorder_rate = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--dup-rate" => o.dup_rate = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--delay-rate" => o.delay_rate = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--delay-ms" => o.delay_ms = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--reset-rate" => o.reset_rate = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--chaos-seed" => {
                o.chaos_seed = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--max-detection" => {
                o.max_detection = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    o
}

/// Loads and validates a topology document from `path`, exiting with a
/// diagnostic on parse or structural failure.
fn load_doc(path: &str) -> tomo_topo::TopologyDoc {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read `{path}`: {e}");
        exit(1);
    });
    let doc = tomo_topo::TopologyDoc::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse `{path}`: {e}");
        exit(1);
    });
    if let Err(e) = doc.validate() {
        eprintln!("invalid topology in `{path}`: {e}");
        exit(1);
    }
    doc
}

/// The topology source a `Create` should carry: a `--topology-file`
/// document (created inline) or a name the *daemon* resolves — which may
/// be an uploaded topology this client cannot build locally.
fn source_of(o: &Options) -> TopologySource {
    match &o.topology_file {
        Some(path) => TopologySource::Inline(load_doc(path)),
        None => TopologySource::Named(o.topology.clone()),
    }
}

/// Resolves the topology *locally* for `swarm`'s scenario generation and
/// `replay --check-batch`'s offline fit: a `--topology-file` document or a
/// builtin generator name. Uploaded names only exist daemon-side, so they
/// error here with a pointer at `--topology-file`.
fn topology_of(o: &Options) -> Result<(tomo_graph::Network, TopologySource), TomoError> {
    match &o.topology_file {
        Some(path) => {
            let doc = load_doc(path);
            let network = doc
                .to_network()
                .map_err(|e| TomoError::InvalidConfig(e.to_string()))?;
            Ok((network, TopologySource::Inline(doc)))
        }
        None => Ok((
            tomo_serve::resolve_topology(&o.topology, o.seed).map_err(|e| {
                TomoError::InvalidConfig(format!(
                    "{e} (this step needs the topology locally; for an uploaded \
                     topology pass its document via --topology-file)"
                ))
            })?,
            TopologySource::Named(o.topology.clone()),
        )),
    }
}

fn gen(o: &Options) {
    let Some(out) = &o.out else {
        eprintln!("gen needs --out PATH");
        usage();
    };
    let network = tomo_serve::resolve_topology(&o.topology, o.seed).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1);
    });
    if let Some(path) = &o.dump_topology {
        let doc = tomo_topo::TopologyDoc::from_network(network.clone());
        let json = serde_json::to_string(&doc).unwrap_or_else(|e| {
            eprintln!("cannot encode topology: {e}");
            exit(1);
        });
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write `{path}`: {e}");
            exit(1);
        });
        eprintln!(
            "Dumped topology `{}` ({} links, {} paths) to {path}",
            o.topology,
            network.num_links(),
            network.num_paths()
        );
    }
    let Some(kind) = parse_scenario(&o.scenario) else {
        eprintln!("unknown scenario `{}`", o.scenario);
        usage();
    };
    let measurement = match o.probes {
        Some(n) if n > 0 => MeasurementMode::PacketProbes {
            packets_per_interval: n,
        },
        _ => MeasurementMode::Ideal,
    };
    let stream = record_scenario(
        &network,
        ScenarioConfig::for_kind(kind),
        o.intervals.max(1),
        o.seed,
        measurement,
    );
    std::fs::write(out, encode_stream(&stream)).unwrap_or_else(|e| {
        eprintln!("cannot write `{out}`: {e}");
        exit(1);
    });
    let congested = stream.iter().filter(|i| !i.congested.is_empty()).count();
    eprintln!(
        "Recorded {} intervals ({} with congestion) on {} paths to {out}",
        stream.len(),
        congested,
        network.num_paths()
    );
}

fn linf(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn replay(o: &Options) -> Result<(), TomoError> {
    let Some(input) = &o.input else {
        eprintln!("replay needs --in PATH");
        usage();
    };
    let text = std::fs::read_to_string(input)?;
    let stream: Vec<ObservedInterval> = decode_stream(&text)?;
    if stream.is_empty() {
        return Err(TomoError::InvalidConfig(format!("`{input}` is empty")));
    }
    let mut client = Client::connect(&o.addr)?;
    if o.create {
        let (links, paths) = client.create_tenant_from(
            o.tenant.clone(),
            source_of(o),
            o.seed,
            &o.estimator,
            o.window,
            o.decay,
            None,
        )?;
        eprintln!(
            "created tenant {} ({} links, {} paths)",
            o.tenant, links, paths
        );
    } else {
        client.set_tenant(o.tenant.clone());
        match client.call(&Request::Attach)? {
            tomo_serve::Response::Attached { .. } => {}
            tomo_serve::Response::Error { message, .. } => {
                return Err(TomoError::InvalidConfig(format!(
                    "cannot attach to tenant {}: {message} (use --create?)",
                    o.tenant
                )))
            }
            other => {
                return Err(TomoError::InvalidConfig(format!(
                    "unexpected response {other:?}"
                )))
            }
        }
    }

    let batch_size = o.batch.max(1);
    let mut previous: Option<Vec<f64>> = None;
    let mut sent = 0usize;
    let mut since_query = 0usize;
    let mut busy_retries = 0u64;
    for chunk in stream.chunks(batch_size) {
        // Bounded-queue backpressure: a Busy answer means "drain first".
        loop {
            if client.observe_batch(chunk.iter().map(|i| i.congested.clone()).collect())? {
                break;
            }
            busy_retries += 1;
            client.flush()?;
        }
        sent += chunk.len();
        since_query += chunk.len();
        if since_query >= o.query_every.max(1) || sent == stream.len() {
            since_query = 0;
            let total = client.flush()?;
            let estimate = client.query()?;
            let drift = previous
                .as_ref()
                .map(|prev| linf(prev, &estimate.probabilities));
            match drift {
                Some(d) => println!("intervals={total} drift={d:.6}"),
                None => println!("intervals={total} drift=n/a"),
            }
            previous = Some(estimate.probabilities);
        }
        if o.rate > 0.0 {
            let secs = chunk.len() as f64 / o.rate;
            std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        }
    }
    client.flush()?;
    let final_estimate = client.query()?;
    if busy_retries > 0 {
        eprintln!("backpressure: {busy_retries} Busy responses absorbed via Flush");
    }

    if let Some(tolerance) = o.check_batch {
        let (network, _) = topology_of(o)?;
        let observations = stream_to_observations(&stream, network.num_paths())?;
        let mut offline = estimators::by_name(&o.estimator)?;
        offline.fit(&network, &observations)?;
        let estimate = offline.estimate().ok_or_else(|| {
            TomoError::InvalidConfig(format!(
                "estimator `{}` has no probability capability",
                o.estimator
            ))
        })?;
        let offline_probabilities: Vec<f64> = (0..network.num_links())
            .map(|l| estimate.link_congestion_probability(LinkId(l)))
            .collect();
        let deviation = linf(&offline_probabilities, &final_estimate.probabilities);
        println!("check-batch: max |daemon − offline| = {deviation:.6} (tolerance {tolerance})");
        if deviation > tolerance {
            eprintln!("check-batch FAILED");
            exit(1);
        }
        println!("check-batch OK");
    }

    if o.drop {
        let _ = client.call(&Request::Drop)?;
        eprintln!("tenant {} dropped", o.tenant);
    }
    if o.shutdown {
        let _ = client.call(&Request::Shutdown)?;
        eprintln!("daemon asked to shut down");
    }
    Ok(())
}

/// Quantile of a sorted latency sample (nearest-rank).
fn quantile_ms(sorted_ns: &[u128], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() as f64 * q).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e6
}

fn swarm(o: &Options) -> Result<(), TomoError> {
    if o.connections == 0 {
        eprintln!("swarm needs --connections N");
        usage();
    }
    if o.idle > o.connections {
        return Err(TomoError::InvalidConfig(format!(
            "--idle {} exceeds --connections {}",
            o.idle, o.connections
        )));
    }
    let hot = (o.connections - o.idle).max(1);
    let idle = o.connections - hot;
    // Every connection is a client-side fd too; ask for headroom.
    let _ = tomo_net::raise_nofile_limit(o.connections as u64 + 256);

    // The hot tenants' shared stream, generated in-process over either a
    // generator topology or a --topology-file document.
    let (network, source) = topology_of(o)?;
    let Some(kind) = parse_scenario(&o.scenario) else {
        eprintln!("unknown scenario `{}`", o.scenario);
        usage();
    };
    let stream: Vec<Vec<usize>> = record_scenario(
        &network,
        ScenarioConfig::for_kind(kind),
        o.intervals.max(1),
        o.seed,
        MeasurementMode::Ideal,
    )
    .into_iter()
    .map(|i| i.congested)
    .collect();
    let stream = std::sync::Arc::new(stream);

    // Hot connections first: each owns tenant `PREFIX-hot-K` for the whole
    // run (create or attach), so monitors have tenants to watch.
    let hot_tenant = |k: usize| format!("{}-hot-{k}", o.tenant);
    let mut hot_clients = Vec::with_capacity(hot);
    for k in 0..hot {
        let mut client = Client::connect(&o.addr)?;
        if o.create {
            client.create_tenant_from(
                hot_tenant(k),
                source.clone(),
                o.seed,
                &o.estimator,
                o.window,
                o.decay,
                None,
            )?;
        } else {
            client.set_tenant(hot_tenant(k));
            match client.call(&Request::Attach)? {
                tomo_serve::Response::Attached { .. } => {}
                other => {
                    return Err(TomoError::InvalidConfig(format!(
                        "cannot attach hot tenant {}: {other:?} (use --create?)",
                        hot_tenant(k)
                    )))
                }
            }
        }
        hot_clients.push(client);
    }

    // Idle monitors: attach once, round-robin over the hot tenants, and
    // hold the connection open without traffic.
    let mut monitors = Vec::with_capacity(idle);
    for j in 0..idle {
        let mut client = Client::connect(&o.addr)?;
        client.set_tenant(hot_tenant(j % hot));
        match client.call(&Request::Attach)? {
            tomo_serve::Response::Attached { .. } => {}
            other => {
                return Err(TomoError::InvalidConfig(format!(
                    "monitor {j} cannot attach: {other:?}"
                )))
            }
        }
        monitors.push(client);
        if (j + 1) % 250 == 0 {
            eprintln!("swarm: {} idle monitors connected", j + 1);
        }
    }

    // Stream the scenario through every hot connection concurrently while
    // the monitors stay parked.
    let batch_size = o.batch.max(1);
    let busy_total = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let ingest_started = std::time::Instant::now();
    let mut writers = Vec::new();
    for (k, mut client) in hot_clients.into_iter().enumerate() {
        let stream = std::sync::Arc::clone(&stream);
        let busy_total = std::sync::Arc::clone(&busy_total);
        writers.push(std::thread::spawn(move || -> Result<Client, TomoError> {
            for chunk in stream.chunks(batch_size) {
                loop {
                    if client.observe_batch(chunk.to_vec())? {
                        break;
                    }
                    busy_total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    client.flush()?;
                }
            }
            let total = client.flush()?;
            if total != stream.len() as u64 {
                return Err(TomoError::InvalidConfig(format!(
                    "hot tenant {k}: ingested {total} of {} intervals",
                    stream.len()
                )));
            }
            Ok(client)
        }));
    }
    let mut hot_clients = Vec::new();
    for writer in writers {
        hot_clients.push(writer.join().expect("writer thread")?);
    }
    let ingest_elapsed = ingest_started.elapsed();

    // One monitor-query pass across every idle connection: the "occasional
    // Query" of an idle monitor, timed for the latency quantiles.
    let mut latencies_ns: Vec<u128> = Vec::with_capacity(idle.max(1));
    if monitors.is_empty() {
        // No idle tier requested; time the hot connections instead.
        for client in &mut hot_clients {
            let start = std::time::Instant::now();
            client.query()?;
            latencies_ns.push(start.elapsed().as_nanos());
        }
    } else {
        for client in &mut monitors {
            let start = std::time::Instant::now();
            let estimate = client.query()?;
            latencies_ns.push(start.elapsed().as_nanos());
            if estimate.intervals != stream.len() as u64 {
                return Err(TomoError::InvalidConfig(format!(
                    "monitor saw {} intervals, expected {}",
                    estimate.intervals,
                    stream.len()
                )));
            }
        }
    }
    latencies_ns.sort_unstable();

    let ingested = (stream.len() * hot) as f64;
    let rate = ingested / ingest_elapsed.as_secs_f64().max(1e-9);
    println!(
        "swarm: connections={} idle={idle} hot={hot} intervals_per_tenant={} \
         ingest_rate_per_sec={rate:.0} busy_retries={} queries={} \
         query_p50_ms={:.3} query_p95_ms={:.3}",
        o.connections,
        stream.len(),
        busy_total.load(std::sync::atomic::Ordering::Relaxed),
        latencies_ns.len(),
        quantile_ms(&latencies_ns, 0.50),
        quantile_ms(&latencies_ns, 0.95),
    );

    // The server's own view of the same queries: merged dispatch-latency
    // histograms across the hot tenants. Client wall-clock minus these is
    // connection-queue + network skew. Best-effort — an endpoint that
    // predates the `Metrics` request just skips the line.
    match hot_clients[0].metrics() {
        Ok(report) => {
            let prefix = format!("{}-hot-", o.tenant);
            let mut server_query: Option<tomo_metrics::LatencySummary> = None;
            for row in &report.per_tenant {
                if !row.tenant.starts_with(&prefix) {
                    continue;
                }
                match &mut server_query {
                    Some(acc) => acc.merge(&row.query),
                    None => server_query = Some(row.query.clone()),
                }
            }
            if let Some(sq) = server_query {
                println!(
                    "swarm-server: query_p50_ms={:.3} query_p95_ms={:.3} query_p99_ms={:.3} \
                     count={} (daemon dispatch histograms; client minus server = queue+net skew)",
                    sq.p50_ns as f64 / 1e6,
                    sq.p95_ns as f64 / 1e6,
                    sq.p99_ns as f64 / 1e6,
                    sq.count,
                );
            }
        }
        Err(e) => eprintln!("swarm: endpoint did not answer Metrics ({e}); skipping server view"),
    }

    if o.shutdown {
        let _ = hot_clients[0].call(&Request::Shutdown)?;
        eprintln!("daemon asked to shut down");
    }
    Ok(())
}

/// Response classification counts for one observation connection, updated
/// by its drain thread. Observation lines are written fire-and-forget (the
/// proxy reorders and duplicates lines, so responses cannot be paired with
/// requests), which makes classification the only thing a reader *can* do
/// — and an undecodable response line is itself a finding, because the
/// proxy never mutates the response direction.
#[derive(Default)]
struct ObsCounters {
    accepted: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
    framing: AtomicU64,
}

/// One observation connection routed through the chaos proxy, with a
/// spawned drain thread classifying whatever responses make it back.
struct ObsLink {
    stream: std::net::TcpStream,
}

impl ObsLink {
    fn connect(proxy: &str, counters: &Arc<ObsCounters>) -> std::io::Result<ObsLink> {
        let stream = std::net::TcpStream::connect(proxy)?;
        let reader = stream.try_clone()?;
        let counters = Arc::clone(counters);
        std::thread::spawn(move || {
            use std::io::BufRead;
            let mut reader = std::io::BufReader::new(reader);
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => match tomo_serve::protocol::decode::<ResponseEnvelope>(&line) {
                        Ok(envelope) => {
                            let counter = match envelope.resp {
                                Response::Accepted { .. } => &counters.accepted,
                                Response::Busy { .. } => &counters.busy,
                                _ => &counters.errors,
                            };
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            counters.framing.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                }
            }
        });
        Ok(ObsLink { stream })
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        use std::io::Write;
        self.stream.write_all(line.as_bytes())
    }
}

/// What one chaos tenant's drill produced.
struct ChaosTenant {
    tenant: String,
    sent: usize,
    reconnects: u64,
    accepted: u64,
    busy: u64,
    errors: u64,
    framing: u64,
    report: tomo_metrics::ReactionReport,
    check_deviation: Option<f64>,
}

/// Drives one tenant through the fault schedule: simulate the chaos
/// scenario locally (observations + fault events + per-epoch truth),
/// stream the observations through the proxy, sample `Query` on the clean
/// control connection, and score the reactions.
fn run_chaos_tenant(
    o: &Options,
    k: usize,
    proxy_addr: &str,
    network: &tomo_graph::Network,
    source: TopologySource,
    kind: ScenarioKind,
) -> Result<ChaosTenant, TomoError> {
    let tenant = format!("{}-chaos-{k}", o.tenant);
    let seed = o.seed.wrapping_add(k as u64);
    // Each tenant streams its own realization of the fault schedule.
    let sim = Simulator::new(SimulationConfig {
        num_intervals: o.intervals.max(1),
        scenario: ScenarioConfig::for_kind(kind),
        loss: LossModel::default(),
        measurement: MeasurementMode::Ideal,
        seed,
    })
    .run(network);
    let stream: Vec<Vec<usize>> = observations_to_stream(&sim.observations)
        .into_iter()
        .map(|i| i.congested)
        .collect();

    // Control plane: Create/Flush/Query on a clean, direct connection, so
    // reaction sampling is never itself subject to chaos.
    let mut control = Client::connect(&o.addr)?;
    control.create_tenant_from(
        tenant.clone(),
        source,
        seed,
        &o.estimator,
        o.window,
        o.decay,
        o.rebuild_auto.then_some(tomo_core::RebuildPolicy::Auto),
    )?;

    // Data plane: fire-and-forget observation lines through the proxy.
    let counters = Arc::new(ObsCounters::default());
    let mut link = ObsLink::connect(proxy_addr, &counters)?;
    let mut reconnects = 0u64;
    let mut samples: Vec<EstimateSample> = Vec::new();
    let mut sent = 0usize;
    let mut since_query = 0usize;
    let query_every = o.query_every.max(1);
    for chunk in stream.chunks(o.batch.max(1)) {
        let envelope = RequestEnvelope {
            v: PROTOCOL_VERSION,
            tenant: Some(tenant.clone()),
            deadline_ms: None,
            req: Request::ObserveBatch {
                intervals: chunk.to_vec(),
            },
        };
        let line = format!("{}\n", tomo_serve::protocol::encode(&envelope));
        if link.send(&line).is_err() {
            // Injected reset. Reconnect through the proxy and resend the
            // interrupted batch once; a second reset on the same line
            // loses the batch — exactly the data loss reactions measure.
            reconnects += 1;
            link = ObsLink::connect(proxy_addr, &counters)?;
            let _ = link.send(&line);
        }
        sent += chunk.len();
        since_query += chunk.len();
        if since_query >= query_every || sent == stream.len() {
            since_query = 0;
            // Give in-flight proxy lines a moment to land before the
            // drain barrier, so the sample reflects what arrived.
            std::thread::sleep(std::time::Duration::from_millis(20));
            // Under heavy line loss the first batches may not have arrived
            // yet; an unfed session has no estimate to sample.
            if control.flush()? > 0 {
                let estimate = control.query()?;
                samples.push(EstimateSample {
                    intervals: sent,
                    probabilities: estimate.probabilities,
                });
            }
        }
        if o.rate > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(
                chunk.len() as f64 / o.rate,
            ));
        }
    }

    // Score the sampled estimates against the simulated fault schedule.
    let truth: Vec<(usize, &[f64])> = sim
        .ground_truth
        .epoch_marginals()
        .iter()
        .map(|e| (e.start, e.marginals.as_slice()))
        .collect();
    let report = score_reactions(
        &sim.fault_events,
        &samples,
        &truth,
        ReactionConfig { band: o.band },
    );

    // Offline verification of the live estimate: refit the estimator on
    // the post-fault window only and compare with the final sample. Only
    // meaningful when the live estimate tracks the current regime
    // (--decay or a bounded --window), and approximate under line loss —
    // the daemon fitted what *arrived*, the offline fit sees everything.
    let check_deviation = match o.check_batch {
        Some(_) => {
            let last_fault = sim
                .fault_events
                .iter()
                .map(|f| f.interval)
                .max()
                .unwrap_or(0)
                .min(stream.len().saturating_sub(1));
            let window: Vec<ObservedInterval> = stream[last_fault..]
                .iter()
                .map(|c| ObservedInterval {
                    congested: c.clone(),
                })
                .collect();
            let observations = stream_to_observations(&window, network.num_paths())?;
            let mut offline = estimators::by_name(&o.estimator)?;
            offline.fit(network, &observations)?;
            let estimate = offline.estimate().ok_or_else(|| {
                TomoError::InvalidConfig(format!(
                    "estimator `{}` has no probability capability",
                    o.estimator
                ))
            })?;
            let offline_probabilities: Vec<f64> = (0..network.num_links())
                .map(|l| estimate.link_congestion_probability(LinkId(l)))
                .collect();
            samples
                .last()
                .map(|s| linf(&offline_probabilities, &s.probabilities))
        }
        None => None,
    };

    // Let the drain thread consume any straggler responses before the
    // counters are snapshotted.
    std::thread::sleep(std::time::Duration::from_millis(50));
    Ok(ChaosTenant {
        tenant,
        sent,
        reconnects,
        accepted: counters.accepted.load(Ordering::Relaxed),
        busy: counters.busy.load(Ordering::Relaxed),
        errors: counters.errors.load(Ordering::Relaxed),
        framing: counters.framing.load(Ordering::Relaxed),
        report,
        check_deviation,
    })
}

/// Nearest-rank percentile of a sorted latency list, or `-` when no fault
/// qualified.
fn fmt_latency(sorted: &[usize], q: f64) -> String {
    if sorted.is_empty() {
        return "-".into();
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].to_string()
}

fn chaos(o: &Options) -> Result<(), TomoError> {
    let (network, source) = topology_of(o)?;
    let Some(kind) = parse_scenario(&o.scenario) else {
        eprintln!("unknown scenario `{}`", o.scenario);
        usage();
    };
    let config = ChaosConfig {
        seed: o.chaos_seed.unwrap_or(o.seed),
        drop_rate: o.drop_rate,
        reorder_rate: o.reorder_rate,
        dup_rate: o.dup_rate,
        delay_rate: o.delay_rate,
        delay_ms: o.delay_ms,
        reset_rate: o.reset_rate,
    };
    let proxy = ChaosProxy::start(o.addr.clone(), config)
        .map_err(|e| TomoError::InvalidConfig(format!("cannot start chaos proxy: {e}")))?;
    let proxy_addr = proxy.local_addr().to_string();
    eprintln!(
        "chaos proxy on {proxy_addr} -> {} (drop={} reorder={} dup={} delay={}@{}ms reset={})",
        o.addr, o.drop_rate, o.reorder_rate, o.dup_rate, o.delay_rate, o.delay_ms, o.reset_rate
    );

    // Every tenant runs concurrently — a fleet under fault injection, not
    // a sequence of solo drills.
    let tenants = o.tenants.max(1);
    let outcomes: Vec<Result<ChaosTenant, TomoError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..tenants)
            .map(|k| {
                let source = source.clone();
                let proxy_addr = proxy_addr.clone();
                let network = &network;
                scope.spawn(move || run_chaos_tenant(o, k, &proxy_addr, network, source, kind))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos tenant thread"))
            .collect()
    });
    let proxy_counters = proxy.shutdown();
    let mut fleet = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        fleet.push(outcome?);
    }

    // Machine-readable timeline: one JSON line per injected fault event.
    for t in &fleet {
        for reaction in &t.report.reactions {
            let mut value = serde_json::to_value(reaction);
            if let serde_json::Value::Object(fields) = &mut value {
                fields.insert(
                    0,
                    (
                        "tenant".to_string(),
                        serde_json::Value::Str(t.tenant.clone()),
                    ),
                );
            }
            println!(
                "{}",
                serde_json::to_string(&value).map_err(|e| TomoError::InvalidConfig(format!(
                    "cannot encode reaction: {e}"
                )))?
            );
        }
    }

    // Per-fault-kind summary across the fleet (latencies in intervals).
    let mut by_kind: std::collections::BTreeMap<&'static str, Vec<&FaultReaction>> =
        Default::default();
    for t in &fleet {
        for r in &t.report.reactions {
            by_kind.entry(r.fault.kind.label()).or_default().push(r);
        }
    }
    println!(
        "{:<15} {:>6} {:>8} {:>11} {:>7} {:>7} {:>7} {:>7} {:>13}",
        "kind",
        "events",
        "detected",
        "reconverged",
        "det_p50",
        "det_p95",
        "rec_p50",
        "rec_p95",
        "mid_fault_err"
    );
    for (kind_label, reactions) in &by_kind {
        let mut det: Vec<usize> = reactions
            .iter()
            .filter_map(|r| r.detection_latency)
            .collect();
        det.sort_unstable();
        let mut rec: Vec<usize> = reactions
            .iter()
            .filter_map(|r| r.reconverge_latency)
            .collect();
        rec.sort_unstable();
        let err: f64 = reactions.iter().map(|r| r.mid_fault_error).sum();
        println!(
            "{kind_label:<15} {:>6} {:>8} {:>11} {:>7} {:>7} {:>7} {:>7} {err:>13.4}",
            reactions.len(),
            det.len(),
            rec.len(),
            fmt_latency(&det, 0.50),
            fmt_latency(&det, 0.95),
            fmt_latency(&rec, 0.50),
            fmt_latency(&rec, 0.95),
        );
    }

    let mut framing_total = 0u64;
    for t in &fleet {
        eprintln!(
            "tenant {}: sent={} accepted={} busy_lost={} errors={} framing_errors={} \
             reconnects={} faults={} detected={} reconverged={}",
            t.tenant,
            t.sent,
            t.accepted,
            t.busy,
            t.errors,
            t.framing,
            t.reconnects,
            t.report.num_faults(),
            t.report.num_detected(),
            t.report.num_reconverged(),
        );
        framing_total += t.framing;
    }
    eprintln!(
        "proxy: connections={} forwarded={} dropped={} reordered={} duplicated={} \
         delayed={} resets={}",
        proxy_counters.connections,
        proxy_counters.forwarded,
        proxy_counters.dropped,
        proxy_counters.reordered,
        proxy_counters.duplicated,
        proxy_counters.delayed,
        proxy_counters.resets,
    );

    let mut failed = false;
    if framing_total > 0 {
        eprintln!(
            "chaos FAILED: {framing_total} undecodable response line(s) — the daemon \
             corrupted v2 framing under adversarial input"
        );
        failed = true;
    }
    if let Some(tolerance) = o.check_batch {
        for t in &fleet {
            match t.check_deviation {
                Some(deviation) => {
                    println!(
                        "check-batch {}: max |daemon − offline(post-fault)| = {deviation:.6} \
                         (tolerance {tolerance})",
                        t.tenant
                    );
                    if deviation > tolerance {
                        eprintln!(
                            "chaos FAILED: tenant {} deviates {deviation:.6} > {tolerance} \
                             from the post-fault offline fit",
                            t.tenant
                        );
                        failed = true;
                    }
                }
                None => {
                    eprintln!(
                        "chaos FAILED: tenant {} produced no samples to verify",
                        t.tenant
                    );
                    failed = true;
                }
            }
        }
    }
    if let Some(bound) = o.max_detection {
        let mut det: Vec<usize> = fleet
            .iter()
            .flat_map(|t| {
                t.report
                    .reactions
                    .iter()
                    .filter_map(|r| r.detection_latency)
            })
            .collect();
        det.sort_unstable();
        let total_faults: usize = fleet.iter().map(|t| t.report.num_faults()).sum();
        if det.is_empty() {
            if total_faults > 0 {
                eprintln!(
                    "chaos FAILED: none of {total_faults} fault(s) was detected \
                     (bound {bound} intervals)"
                );
                failed = true;
            }
        } else {
            let rank = ((det.len() as f64 * 0.95).ceil() as usize).clamp(1, det.len());
            let p95 = det[rank - 1];
            println!(
                "detection p95 = {p95} intervals (bound {bound}, {} of {total_faults} \
                 faults detected)",
                det.len()
            );
            if p95 > bound {
                eprintln!("chaos FAILED: detection p95 {p95} exceeds bound {bound}");
                failed = true;
            }
        }
    }
    if o.shutdown {
        let mut client = Client::connect(&o.addr)?;
        let _ = client.call(&Request::Shutdown)?;
        eprintln!("daemon asked to shut down");
    }
    if failed {
        exit(1);
    }
    Ok(())
}

/// Fetches the fleet `Metrics` report and prints it as one JSON line.
fn metrics(o: &Options) -> Result<(), TomoError> {
    let mut client = Client::connect(&o.addr)?;
    let report = client.metrics()?;
    println!(
        "{}",
        serde_json::to_string(&report)
            .map_err(|e| TomoError::InvalidConfig(format!("cannot encode metrics: {e}")))?
    );
    if o.shutdown {
        let _ = client.call(&Request::Shutdown)?;
        eprintln!("daemon asked to shut down");
    }
    Ok(())
}

/// Uploads a topology document into the daemon's library.
fn upload_topology(o: &Options) -> Result<(), TomoError> {
    let Some(input) = &o.input else {
        eprintln!("upload-topology needs --in PATH");
        usage();
    };
    let Some(name) = &o.name else {
        eprintln!("upload-topology needs --name NAME");
        usage();
    };
    let doc = load_doc(input);
    let mut client = Client::connect(&o.addr)?;
    // The daemon ignores the tenant on UploadTopology, but a router routes
    // by it: stamping --tenant lands the upload on the backend that will
    // own the tenant created from this name.
    client.set_tenant(o.tenant.clone());
    let (links, paths, hash) = client.upload_topology(name, doc)?;
    println!("uploaded topology `{name}`: links={links} paths={paths} hash={hash}");
    Ok(())
}

/// Prints the attached tenant's `TopologyInfo` report as one JSON line.
fn topology(o: &Options) -> Result<(), TomoError> {
    let mut client = Client::connect(&o.addr)?;
    client.set_tenant(o.tenant.clone());
    let info = client.topology_info()?;
    println!(
        "{}",
        serde_json::to_string(&info)
            .map_err(|e| TomoError::InvalidConfig(format!("cannot encode topology info: {e}")))?
    );
    eprintln!(
        "tenant {}: {} links ({} unobserved), {} paths, rank {}, {} alias group(s), \
         rebuild {}, drift events {}",
        o.tenant,
        info.report.links,
        info.report.unobserved_links,
        info.report.paths,
        info.alias.rank,
        info.alias.groups.len(),
        info.rebuild.label(),
        info.drift.total_events(),
    );
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((mode, rest)) = argv.split_first() else {
        usage();
    };
    let o = parse_options(rest);
    match mode.as_str() {
        "gen" => gen(&o),
        "replay" => {
            if let Err(e) = replay(&o) {
                eprintln!("replay failed: {e}");
                exit(1);
            }
        }
        "swarm" => {
            if let Err(e) = swarm(&o) {
                eprintln!("swarm failed: {e}");
                exit(1);
            }
        }
        "chaos" => {
            if let Err(e) = chaos(&o) {
                eprintln!("chaos failed: {e}");
                exit(1);
            }
        }
        "metrics" => {
            if let Err(e) = metrics(&o) {
                eprintln!("metrics failed: {e}");
                exit(1);
            }
        }
        "upload-topology" => {
            if let Err(e) = upload_topology(&o) {
                eprintln!("upload-topology failed: {e}");
                exit(1);
            }
        }
        "topology" => {
            if let Err(e) = topology(&o) {
                eprintln!("topology failed: {e}");
                exit(1);
            }
        }
        _ => usage(),
    }
}
