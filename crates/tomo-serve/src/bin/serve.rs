//! The multi-tenant streaming-tomography daemon.
//!
//! ```text
//! serve [--addr 127.0.0.1:7070] [--threads 8] [--max-conns N]
//!       [--shards 8] [--queue-bound 64] [--admission busy|shed-oldest]
//!       [--snapshot-dir DIR] [--snapshot-every N] [--restore]
//!       [--tenant NAME:TOPOLOGY[:SEED]]...
//!       [--topology toy|brite-tiny|sparse-tiny] [--topology-file net.json]
//!       [--estimator independence] [--seed N] [--window N] [--decay L]
//! ```
//!
//! Listens for v2 JSON-lines request envelopes (see
//! `tomo_serve::protocol`). Tenants can be pre-created at boot with
//! repeated `--tenant NAME:TOPOLOGY[:SEED]` specs (sharing the
//! `--estimator/--window/--decay` defaults), created over the wire with
//! `Create`, or restored from `--snapshot-dir` with `--restore`. When no
//! tenant spec, no restore and no explicit topology produce any tenant, a
//! `default` tenant on `--topology` is created so single-tenant usage
//! stays one command. With `--snapshot-dir`, per-tenant state is persisted
//! atomically on demand (`Snapshot`/`SnapshotAll`), every
//! `--snapshot-every` intervals, and on shutdown.

use std::process::exit;
use std::sync::Arc;

use tomo_core::{RebuildPolicy, SessionConfig, TomographySession};
use tomo_serve::protocol::AdmissionPolicy;
use tomo_serve::{EngineRegistry, RegistryConfig, Server, TenantId};

struct Args {
    addr: String,
    threads: usize,
    max_conns: Option<usize>,
    shards: usize,
    queue_bound: usize,
    admission: AdmissionPolicy,
    snapshot_dir: Option<String>,
    snapshot_every: Option<u64>,
    restore: bool,
    tenants: Vec<String>,
    topology: String,
    topology_file: Option<String>,
    estimator: String,
    seed: u64,
    window: Option<usize>,
    decay: Option<f64>,
    rebuild: RebuildPolicy,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--threads N] [--max-conns N] [--shards N] [--queue-bound N]\n\
         \x20            [--admission busy|shed-oldest]\n\
         \x20            [--snapshot-dir DIR] [--snapshot-every N] [--restore]\n\
         \x20            [--tenant NAME:TOPOLOGY[:SEED]]...\n\
         \x20            [--topology toy|brite-tiny|sparse-tiny] [--topology-file PATH]\n\
         \x20            [--estimator NAME] [--seed N] [--window N] [--decay LAMBDA]\n\
         \x20            [--rebuild manual|auto]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7070".into(),
        threads: 8,
        max_conns: None,
        shards: 8,
        queue_bound: 64,
        admission: AdmissionPolicy::Busy,
        snapshot_dir: None,
        snapshot_every: None,
        restore: false,
        tenants: Vec::new(),
        topology: "toy".into(),
        topology_file: None,
        estimator: "independence".into(),
        seed: 0,
        window: None,
        decay: None,
        rebuild: RebuildPolicy::Manual,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = value(&mut i),
            "--threads" => args.threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-conns" => {
                args.max_conns = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--shards" => args.shards = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queue-bound" => args.queue_bound = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--admission" => {
                args.admission = value(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--snapshot-dir" => args.snapshot_dir = Some(value(&mut i)),
            "--snapshot-every" => {
                args.snapshot_every = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--restore" => args.restore = true,
            "--tenant" => args.tenants.push(value(&mut i)),
            "--topology" => args.topology = value(&mut i),
            "--topology-file" => args.topology_file = Some(value(&mut i)),
            "--estimator" => args.estimator = value(&mut i),
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--window" => args.window = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--decay" => args.decay = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--rebuild" => {
                args.rebuild = match value(&mut i).to_ascii_lowercase().as_str() {
                    "manual" => RebuildPolicy::Manual,
                    "auto" => RebuildPolicy::Auto,
                    other => {
                        eprintln!("bad --rebuild `{other}` (expected manual or auto)");
                        usage()
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    args
}

/// Creates one tenant from a `NAME:TOPOLOGY[:SEED]` spec.
fn create_tenant_from_spec(registry: &EngineRegistry, spec: &str, args: &Args) {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.is_empty() || parts.len() > 3 {
        eprintln!("bad --tenant spec `{spec}` (expected NAME:TOPOLOGY[:SEED])");
        exit(2);
    }
    let name = parts[0];
    let topology = parts.get(1).copied().unwrap_or(args.topology.as_str());
    let seed = match parts.get(2) {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad seed in --tenant spec `{spec}`");
            exit(2)
        }),
        None => args.seed,
    };
    create_tenant(registry, name, topology, None, seed, args);
}

fn create_tenant(
    registry: &EngineRegistry,
    name: &str,
    topology: &str,
    topology_file: Option<&str>,
    seed: u64,
    args: &Args,
) {
    let id = TenantId::new(name).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(2);
    });
    if registry.lookup(&id).is_some() {
        // Already restored from a snapshot; the operator's spec is a no-op.
        eprintln!("tenant {name}: already restored from snapshot, keeping restored state");
        return;
    }
    let network = match topology_file {
        Some(path) => tomo_serve::load_topology_file(path),
        None => tomo_serve::resolve_topology(topology, seed),
    }
    .unwrap_or_else(|e| {
        eprintln!("tenant {name}: cannot build topology: {e}");
        exit(1);
    });
    let config = SessionConfig {
        estimator: args.estimator.clone(),
        options: Default::default(),
        window_capacity: args.window,
        decay: args.decay,
        rebuild: args.rebuild,
    };
    let session = TomographySession::new(network, config).unwrap_or_else(|e| {
        eprintln!("tenant {name}: cannot create session: {e}");
        exit(1);
    });
    let entry = registry.create(id, session).unwrap_or_else(|e| {
        eprintln!("tenant {name}: {e}");
        exit(1);
    });
    eprintln!(
        "tenant {name}: {topology} ({} links, {} paths, estimator {})",
        entry.num_links(),
        entry.num_paths(),
        args.estimator
    );
}

fn main() {
    let args = parse_args();
    // --topology-file only feeds the implicit `default` tenant; combining
    // it with explicit tenant specs would silently serve generator
    // topologies instead of the measured one, so reject the ambiguity.
    if args.topology_file.is_some() && !args.tenants.is_empty() {
        eprintln!(
            "--topology-file applies to the implicit `default` tenant and cannot be \
             combined with --tenant specs (create file-backed tenants by running one \
             daemon per file, or extend the spec syntax)"
        );
        exit(2);
    }
    let registry = Arc::new(EngineRegistry::new(RegistryConfig {
        num_shards: args.shards,
        queue_bound: args.queue_bound,
        default_admission: args.admission,
        snapshot_dir: args.snapshot_dir.clone(),
        snapshot_every: args.snapshot_every,
        ..RegistryConfig::default()
    }));

    if args.restore {
        let Some(dir) = &args.snapshot_dir else {
            eprintln!("--restore needs --snapshot-dir DIR");
            exit(2);
        };
        match registry.restore_fleet(dir) {
            Ok(names) if names.is_empty() => {
                eprintln!("No snapshots under {dir} yet; starting fresh.")
            }
            Ok(names) => eprintln!(
                "Restored {} tenant(s) from {dir}: {}",
                names.len(),
                names.join(", ")
            ),
            Err(e) => {
                eprintln!("cannot restore fleet: {e}");
                exit(1);
            }
        }
    }
    for spec in &args.tenants {
        create_tenant_from_spec(&registry, spec, &args);
    }
    if args.topology_file.is_some() && registry.num_tenants() > 0 {
        eprintln!(
            "note: --topology-file ignored (tenants were restored from snapshots; \
             the file only seeds the implicit `default` tenant of an empty fleet)"
        );
    }
    if registry.num_tenants() == 0 {
        // Single-tenant convenience: one default tenant on the CLI topology
        // (or --topology-file, which is only honored on this path).
        create_tenant(
            &registry,
            "default",
            &args.topology,
            args.topology_file.as_deref(),
            args.seed,
            &args,
        );
    }

    let tenants = registry.num_tenants();
    let shards = registry.config().num_shards;
    // A C10K daemon must not be silently truncated by a 1024-fd default
    // soft limit: ask for headroom above the connection target.
    if let Some(limit) = args.max_conns {
        let _ = tomo_net::raise_nofile_limit(limit as u64 + 64);
    } else {
        let _ = tomo_net::raise_nofile_limit(16_384);
    }
    let server = Server::bind_with_limit(&args.addr, registry, args.threads, args.max_conns)
        .unwrap_or_else(|e| {
            eprintln!("cannot bind {}: {e}", args.addr);
            exit(1);
        });
    let addr = server.local_addr().expect("bound listener has an address");
    let limit = args
        .max_conns
        .map_or("unlimited".to_string(), |n| n.to_string());
    eprintln!(
        "tomo-serve v2 listening on {addr} ({tenants} tenant(s), {shards} shard(s), \
         queue bound {}, admission {:?}, {} worker(s), max conns {limit})",
        args.queue_bound, args.admission, args.threads
    );
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        exit(1);
    }
    eprintln!("tomo-serve: shut down cleanly");
}
