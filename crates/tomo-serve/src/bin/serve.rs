//! The streaming-tomography daemon.
//!
//! ```text
//! serve [--addr 127.0.0.1:7070] [--estimator independence]
//!       [--topology toy|brite-tiny|sparse-tiny] [--topology-file net.json]
//!       [--seed N] [--window N] [--threads N]
//!       [--snapshot state.json] [--snapshot-every N] [--restore]
//! ```
//!
//! Listens for JSON-lines requests (see `tomo_serve::protocol`), ingesting
//! probe observations and serving continuously updated estimates. With
//! `--snapshot`, state is persisted (atomically) on demand, every
//! `--snapshot-every` intervals, and on shutdown; `--restore` resumes from
//! an existing snapshot instead of starting empty.

use std::process::exit;

use tomo_core::EstimatorOptions;
use tomo_serve::{ServeConfig, ServeEngine, Server};

struct Args {
    addr: String,
    estimator: String,
    topology: String,
    topology_file: Option<String>,
    seed: u64,
    window: Option<usize>,
    threads: usize,
    snapshot: Option<String>,
    snapshot_every: Option<u64>,
    restore: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--estimator NAME]\n\
         \x20            [--topology toy|brite-tiny|sparse-tiny] [--topology-file PATH]\n\
         \x20            [--seed N] [--window N] [--threads N]\n\
         \x20            [--snapshot PATH] [--snapshot-every N] [--restore]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7070".into(),
        estimator: "independence".into(),
        topology: "toy".into(),
        topology_file: None,
        seed: 0,
        window: None,
        threads: 4,
        snapshot: None,
        snapshot_every: None,
        restore: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = value(&mut i),
            "--estimator" => args.estimator = value(&mut i),
            "--topology" => args.topology = value(&mut i),
            "--topology-file" => args.topology_file = Some(value(&mut i)),
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--window" => args.window = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--threads" => args.threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--snapshot" => args.snapshot = Some(value(&mut i)),
            "--snapshot-every" => {
                args.snapshot_every = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--restore" => args.restore = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    args
}

fn build_engine(args: &Args) -> ServeEngine {
    if args.restore {
        let Some(path) = &args.snapshot else {
            eprintln!("--restore needs --snapshot PATH");
            exit(2);
        };
        if std::path::Path::new(path).exists() {
            eprintln!(
                "Restoring state from {path} (topology, estimator and window \
                 come from the snapshot; --snapshot/--snapshot-every from this \
                 invocation apply to future writes)..."
            );
            let mut engine = ServeEngine::restore_from_file(path).unwrap_or_else(|e| {
                eprintln!("cannot restore snapshot: {e}");
                exit(1);
            });
            engine.set_snapshot_config(args.snapshot.clone(), args.snapshot_every);
            return engine;
        }
        eprintln!("No snapshot at {path} yet; starting fresh.");
    }
    let network = match &args.topology_file {
        Some(path) => tomo_serve::load_topology_file(path),
        None => tomo_serve::resolve_topology(&args.topology, args.seed),
    }
    .unwrap_or_else(|e| {
        eprintln!("cannot build topology: {e}");
        exit(1);
    });
    let config = ServeConfig {
        estimator: args.estimator.clone(),
        options: EstimatorOptions::default(),
        window_capacity: args.window,
        snapshot_path: args.snapshot.clone(),
        snapshot_every: args.snapshot_every,
    };
    ServeEngine::new(network, config).unwrap_or_else(|e| {
        eprintln!("cannot create engine: {e}");
        exit(1);
    })
}

fn main() {
    let args = parse_args();
    let engine = build_engine(&args);
    let stats = engine.stats();
    let server = Server::bind(&args.addr, engine, args.threads).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", args.addr);
        exit(1);
    });
    let addr = server.local_addr().expect("bound listener has an address");
    eprintln!(
        "tomo-serve listening on {addr} (estimator: {}, links: {}, paths: {}, window: {})",
        stats.estimator,
        stats.links,
        stats.paths,
        stats
            .window_capacity
            .map_or("unbounded".to_string(), |c| c.to_string()),
    );
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        exit(1);
    }
    eprintln!("tomo-serve: shut down cleanly");
}
