//! Regenerates Figure 4(c): CDF of the absolute error for the
//! "No Independence" scenario on Sparse topologies.
//!
//! Usage: `figure4c [small|medium|paper] [seed]`

use tomo_experiments::{run_figure4c, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .get(1)
        .and_then(|s| ExperimentScale::parse(s))
        .unwrap_or(ExperimentScale::Medium);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);

    eprintln!("Running Figure 4(c) at {scale:?} scale (seed {seed})...");
    let result = run_figure4c(scale, seed).unwrap_or_else(|e| {
        eprintln!("figure4c failed: {e}");
        std::process::exit(1);
    });
    println!("Figure 4(c): CDF of the absolute error (No Independence, Sparse topologies)\n");
    println!("{}", result.render());
    println!("Fraction of links with absolute error <= 0.1:");
    for (algo, frac) in &result.fraction_within_01 {
        println!("  {algo}: {frac:.3}");
    }
    println!(
        "\nJSON:\n{}",
        serde_json::to_string_pretty(&result).expect("serializable")
    );
}
