//! Regenerates Figure 3 of the paper: detection rate and false-positive rate
//! of the Boolean-Inference algorithms under the five congestion scenarios.
//!
//! Usage: `figure3 [small|medium|paper] [seed]`

use tomo_experiments::{run_figure3, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .get(1)
        .and_then(|s| ExperimentScale::parse(s))
        .unwrap_or(ExperimentScale::Medium);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);

    eprintln!("Running Figure 3 at {scale:?} scale (seed {seed})...");
    let result = run_figure3(scale, seed).unwrap_or_else(|e| {
        eprintln!("figure3 failed: {e}");
        std::process::exit(1);
    });
    println!("Figure 3(a): Detection Rate\n");
    println!("{}", result.render_detection());
    println!("Figure 3(b): False Positive Rate\n");
    println!("{}", result.render_false_positives());
    println!(
        "JSON:\n{}",
        serde_json::to_string_pretty(&result).expect("serializable")
    );
}
