//! Regenerates Table 2 of the paper: the assumptions, conditions and
//! approximations each algorithm relies on.

use tomo_experiments::table2;

fn main() {
    let t = table2();
    println!("Table 2: Sources of inaccuracy per algorithm\n");
    println!("{}", t.render());
    println!(
        "JSON:\n{}",
        serde_json::to_string_pretty(&t).expect("serializable")
    );
}
