//! Regenerates Figure 4(b): mean absolute error of per-link congestion
//! probabilities on Sparse topologies.
//!
//! Usage: `figure4b [small|medium|paper] [seed]`

use tomo_experiments::{run_figure4b, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .get(1)
        .and_then(|s| ExperimentScale::parse(s))
        .unwrap_or(ExperimentScale::Medium);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);

    eprintln!("Running Figure 4(b) at {scale:?} scale (seed {seed})...");
    let result = run_figure4b(scale, seed).unwrap_or_else(|e| {
        eprintln!("figure4b failed: {e}");
        std::process::exit(1);
    });
    println!("Figure 4(b): Mean absolute error, per-link probabilities, Sparse topologies\n");
    println!("{}", result.render());
    println!(
        "JSON:\n{}",
        serde_json::to_string_pretty(&result).expect("serializable")
    );
}
