//! Regenerates Figure 4(d): mean absolute error of Correlation-complete when
//! computing the congestion probability of individual links vs correlation
//! subsets, on Brite vs Sparse topologies ("No Independence" scenario).
//!
//! Usage: `figure4d [small|medium|paper] [seed]`

use tomo_experiments::{run_figure4d, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .get(1)
        .and_then(|s| ExperimentScale::parse(s))
        .unwrap_or(ExperimentScale::Medium);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);

    eprintln!("Running Figure 4(d) at {scale:?} scale (seed {seed})...");
    let result = run_figure4d(scale, seed).unwrap_or_else(|e| {
        eprintln!("figure4d failed: {e}");
        std::process::exit(1);
    });
    println!("Figure 4(d): Correlation-complete, links vs correlation subsets\n");
    println!("{}", result.render());
    println!(
        "JSON:\n{}",
        serde_json::to_string_pretty(&result).expect("serializable")
    );
}
