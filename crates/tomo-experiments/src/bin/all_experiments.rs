//! Runs every experiment of the paper in sequence and prints all tables.
//!
//! Usage: `all_experiments [small|medium|paper] [seed]`

use tomo_experiments::{
    run_figure3, run_figure4a, run_figure4b, run_figure4c, run_figure4d, table2, ExperimentScale,
    TomoError,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .get(1)
        .and_then(|s| ExperimentScale::parse(s))
        .unwrap_or(ExperimentScale::Medium);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    eprintln!("Running all experiments at {scale:?} scale (seed {seed})...");

    if let Err(e) = run_all(scale, seed) {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}

fn run_all(scale: ExperimentScale, seed: u64) -> Result<(), TomoError> {
    println!("== Table 2 ==\n{}", table2().render());

    let f3 = run_figure3(scale, seed)?;
    println!(
        "== Figure 3(a): Detection Rate ==\n{}",
        f3.render_detection()
    );
    println!(
        "== Figure 3(b): False Positive Rate ==\n{}",
        f3.render_false_positives()
    );

    let f4a = run_figure4a(scale, seed)?;
    println!(
        "== Figure 4(a): Mean abs. error, Brite ==\n{}",
        f4a.render()
    );
    let f4b = run_figure4b(scale, seed)?;
    println!(
        "== Figure 4(b): Mean abs. error, Sparse ==\n{}",
        f4b.render()
    );
    let f4c = run_figure4c(scale, seed)?;
    println!("== Figure 4(c): CDF of abs. error ==\n{}", f4c.render());
    for (algo, frac) in &f4c.fraction_within_01 {
        println!("  {algo}: fraction of links with error <= 0.1: {frac:.3}");
    }
    let f4d = run_figure4d(scale, seed)?;
    println!("\n== Figure 4(d): links vs subsets ==\n{}", f4d.render());
    Ok(())
}
