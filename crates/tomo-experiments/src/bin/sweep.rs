//! Parallel experiment sweeps over the paper's evaluation grids.
//!
//! ```text
//! sweep [--grid fig3|fig4|table2|ci|stream|chaos|large|demo] [--grid-file grid.json]
//!       [--scale small|medium|paper] [--threads N] [--base-seed N]
//!       [--out report.jsonl] [--print-grid] [--self-check]
//! ```
//!
//! Writes one JSON line per grid cell (task order, byte-identical across
//! thread counts) to `--out` or stdout, and a human summary to stderr.
//! `--print-grid` dumps the resolved grid as JSON instead of running it;
//! `--self-check` additionally re-runs the grid single-threaded and verifies
//! the two reports are byte-identical, reporting the speedup.

use std::process::exit;

use tomo_experiments::{sweeps, ExperimentScale, SweepGrid, SweepRunner};

struct Args {
    grid: Option<String>,
    grid_file: Option<String>,
    scale: ExperimentScale,
    threads: Option<usize>,
    base_seed: u64,
    out: Option<String>,
    print_grid: bool,
    self_check: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--grid fig3|fig4|table2|ci|stream|chaos|large|demo] [--grid-file PATH]\n\
         \x20            [--scale small|medium|paper] [--threads N] [--base-seed N]\n\
         \x20            [--out PATH] [--print-grid] [--self-check]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        grid: None,
        grid_file: None,
        scale: ExperimentScale::Small,
        threads: None,
        base_seed: 1,
        out: None,
        print_grid: false,
        self_check: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--grid" => args.grid = Some(value(&mut i)),
            "--grid-file" => args.grid_file = Some(value(&mut i)),
            "--scale" => {
                args.scale = ExperimentScale::parse(&value(&mut i)).unwrap_or_else(|| usage())
            }
            "--threads" => args.threads = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--base-seed" => args.base_seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = Some(value(&mut i)),
            "--print-grid" => args.print_grid = true,
            "--self-check" => args.self_check = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    args
}

fn load_grid(args: &Args) -> SweepGrid {
    if let Some(path) = &args.grid_file {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read grid file `{path}`: {e}");
            exit(1);
        });
        return serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse grid file `{path}`: {e}");
            exit(1);
        });
    }
    let name = args.grid.as_deref().unwrap_or("demo");
    sweeps::by_name(name, args.scale, args.base_seed).unwrap_or_else(|| {
        eprintln!(
            "unknown grid `{name}` (available: fig3, fig4, table2, ci, stream, chaos, large, demo)"
        );
        exit(1);
    })
}

fn main() {
    let args = parse_args();
    let grid = load_grid(&args);

    if args.print_grid {
        println!(
            "{}",
            serde_json::to_string_pretty(&grid).expect("grid serializes")
        );
        return;
    }

    let runner = match args.threads {
        Some(n) => SweepRunner::new().threads(n),
        None => SweepRunner::new(),
    };
    eprintln!(
        "Sweeping {} tasks on {} thread(s)...",
        grid.num_tasks(),
        runner.num_threads()
    );
    let report = runner.run(&grid).unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        exit(1);
    });
    eprintln!("{}", report.summary());

    if args.self_check {
        eprintln!("Self-check: re-running single-threaded...");
        let single = SweepRunner::new()
            .threads(1)
            .run(&grid)
            .unwrap_or_else(|e| {
                eprintln!("single-threaded sweep failed: {e}");
                exit(1);
            });
        eprintln!("{}", single.summary());
        if single.to_jsonl() != report.to_jsonl() {
            eprintln!("self-check FAILED: reports differ across thread counts");
            exit(1);
        }
        let speedup = single.elapsed.as_secs_f64() / report.elapsed.as_secs_f64().max(1e-9);
        eprintln!(
            "self-check OK: byte-identical reports; {:.2}x speedup at {} thread(s)",
            speedup, report.threads
        );
    }

    match &args.out {
        Some(path) => {
            std::fs::write(path, report.to_jsonl()).unwrap_or_else(|e| {
                eprintln!("cannot write `{path}`: {e}");
                exit(1);
            });
            eprintln!("Report written to {path}");
        }
        None => print!("{}", report.to_jsonl()),
    }
}
