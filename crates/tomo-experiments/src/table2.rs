//! Table 2 of the paper: the sources of inaccuracy (assumptions, conditions,
//! approximations) of every algorithm, generated from the algorithms' own
//! metadata rather than hard-coded.

use serde::{Deserialize, Serialize};
use tomo_core::estimators;

use crate::report::render_table;

/// The regenerated Table 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2 {
    /// Column labels (algorithm names).
    pub algorithms: Vec<String>,
    /// Row labels (assumption / condition names).
    pub rows: Vec<String>,
    /// `cells[row][col]` — whether the algorithm relies on the assumption.
    pub cells: Vec<Vec<bool>>,
}

impl Table2 {
    /// Renders the table with check marks, like the paper.
    pub fn render(&self) -> String {
        let mut header: Vec<&str> = vec!["Assumption / Condition"];
        for a in &self.algorithms {
            header.push(a);
        }
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, label)| {
                let mut cells = vec![label.clone()];
                for &b in &self.cells[i] {
                    cells.push(if b { "X".to_string() } else { String::new() });
                }
                cells
            })
            .collect();
        render_table(&header, &rows)
    }
}

/// Builds Table 2 from the algorithms' metadata: one column per registry
/// estimator, in the registry's canonical order (the Boolean-Inference
/// algorithms of §3 followed by the Probability-Computation algorithms of
/// §5).
pub fn table2() -> Table2 {
    let all: Vec<(String, tomo_prob::AlgorithmAssumptions)> = estimators::all()
        .iter()
        .map(|e| (e.name().to_string(), e.assumptions()))
        .collect();
    let row_labels: Vec<String> = all[0].1.rows().iter().map(|(l, _)| l.to_string()).collect();
    let cells: Vec<Vec<bool>> = (0..row_labels.len())
        .map(|r| all.iter().map(|(_, a)| a.rows()[r].1).collect())
        .collect();
    Table2 {
        algorithms: all.iter().map(|(n, _)| n.clone()).collect(),
        rows: row_labels,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_structure() {
        let t = table2();
        assert_eq!(t.algorithms.len(), 6);
        assert_eq!(t.rows.len(), 8);
        assert!(t.algorithms.contains(&"Sparsity".to_string()));
        assert!(t.algorithms.contains(&"Correlation-complete".to_string()));

        // Every algorithm assumes Separability (row 0) and E2E Monitoring.
        assert!(t.cells[0].iter().all(|&b| b));
        assert!(t.cells[1].iter().all(|&b| b));
        // Only Sparsity assumes Homogeneity.
        let homog_row = &t.cells[2];
        assert_eq!(homog_row.iter().filter(|&&b| b).count(), 1);
        assert!(homog_row[0]);

        let rendered = t.render();
        assert!(rendered.contains("Homogeneity"));
        assert!(rendered.contains('X'));
    }
}
