//! The paper's evaluation re-expressed as [`SweepGrid`]s.
//!
//! Each figure-shaped grid covers (at least) the cells the corresponding
//! figure plots, plus replications along the seed axis, so one parallel
//! sweep regenerates a figure's data with error bars instead of a single
//! draw. The `sweep` binary exposes them by name (`fig3`, `fig4`, `table2`,
//! `ci`, `stream`, `large`, `demo`).

use tomo_sim::ScenarioKind;
use tomo_sweep::{SweepGrid, TopologySpec};

use crate::figure3::FIGURE3_ESTIMATORS;
use crate::figure4::FIGURE4_ESTIMATORS;
use crate::scenarios::ExperimentScale;
use tomo_core::estimators;
use tomo_topology::{BriteConfig, SparseConfig};

/// Number of seed-axis replications the figure grids run per cell.
pub const REPLICATIONS: u64 = 3;

fn replicated(mut grid: SweepGrid, replications: u64) -> SweepGrid {
    for seed in 0..replications {
        grid = grid.seed_axis(seed);
    }
    grid
}

/// Both topology families at the given scale, seeded from the base seed.
fn scale_topologies(grid: SweepGrid, scale: ExperimentScale, base_seed: u64) -> SweepGrid {
    grid.topology(TopologySpec::Brite(scale.brite_config(base_seed)))
        .topology(TopologySpec::Sparse(scale.sparse_config(base_seed)))
}

/// Figure 3 as a grid: the Boolean-Inference algorithms across all five
/// scenarios on both topology families. A superset of the figure (which
/// pairs each scenario with one topology), so the sweep also shows how each
/// scenario behaves on the *other* family.
pub fn figure3_grid(scale: ExperimentScale, base_seed: u64) -> SweepGrid {
    let mut grid = scale_topologies(SweepGrid::new(), scale, base_seed)
        .base_seed(base_seed)
        .interval_count(scale.num_intervals())
        .measurement(scale.measurement());
    for kind in ScenarioKind::all() {
        grid = grid.scenario(kind);
    }
    for name in FIGURE3_ESTIMATORS {
        grid = grid.estimator(name);
    }
    replicated(grid, REPLICATIONS)
}

/// Figure 4 as a grid: the Probability-Computation algorithms under the
/// Random / Concentrated / No-Independence scenarios with non-stationarity
/// layered on (§5.4), on both topology families.
pub fn figure4_grid(scale: ExperimentScale, base_seed: u64) -> SweepGrid {
    let mut grid = scale_topologies(SweepGrid::new(), scale, base_seed)
        .base_seed(base_seed)
        .interval_count(scale.num_intervals())
        .measurement(scale.measurement())
        .nonstationary(50);
    for kind in [
        ScenarioKind::RandomCongestion,
        ScenarioKind::ConcentratedCongestion,
        ScenarioKind::NoIndependence,
    ] {
        grid = grid.scenario(kind);
    }
    for name in FIGURE4_ESTIMATORS {
        grid = grid.estimator(name);
    }
    replicated(grid, REPLICATIONS)
}

/// Table 2 as a grid: all six registry estimators across every scenario on
/// both topology families — the empirical companion to the assumption
/// matrix (each algorithm's accuracy degrades in the scenarios that violate
/// its assumptions).
pub fn table2_grid(scale: ExperimentScale, base_seed: u64) -> SweepGrid {
    let mut grid = scale_topologies(SweepGrid::new(), scale, base_seed)
        .base_seed(base_seed)
        .interval_count(scale.num_intervals())
        .measurement(scale.measurement());
    for kind in ScenarioKind::all() {
        grid = grid.scenario(kind);
    }
    for name in estimators::NAMES {
        grid = grid.estimator(name);
    }
    replicated(grid, REPLICATIONS)
}

/// The CI acceptance grid: ≥500 cheap runs (three small topologies × five
/// scenarios × all six estimators × six replications) that a release build
/// finishes in well under a minute per thread-count.
pub fn ci_grid(base_seed: u64) -> SweepGrid {
    let mut grid = SweepGrid::new()
        .base_seed(base_seed)
        .topology(TopologySpec::Toy)
        .topology(TopologySpec::Brite(BriteConfig::tiny(base_seed)))
        .topology(TopologySpec::Sparse(SparseConfig::tiny(base_seed)))
        .interval_count(60);
    for kind in ScenarioKind::all() {
        grid = grid.scenario(kind);
    }
    for name in estimators::NAMES {
        grid = grid.estimator(name);
    }
    replicated(grid, 6)
}

/// The streaming-workload grid: the dynamic scenarios the `tomo-serve`
/// daemon is built for (drifting loss probabilities, churning correlation
/// structure), run over both tiny topology families with the estimators
/// that have online forms. Every cell runs through the session API
/// (`TomographySession` chunked ingest — the daemon's code path), so this
/// grid exercises the incremental refit machinery end to end and its
/// scores are directly comparable to what a daemon tenant would serve.
pub fn stream_grid(base_seed: u64) -> SweepGrid {
    let mut grid = SweepGrid::new()
        .base_seed(base_seed)
        .topology(TopologySpec::Toy)
        .topology(TopologySpec::Brite(BriteConfig::tiny(base_seed)))
        .interval_count(120)
        .streaming(20);
    for kind in ScenarioKind::streaming() {
        grid = grid.scenario(kind);
    }
    for name in ["sparsity", "independence", "correlation-complete"] {
        grid = grid.estimator(name);
    }
    replicated(grid, REPLICATIONS)
}

/// Estimator-axis specs the chaos grid ranks: the streaming estimator
/// registry with and without exponential decay and the auto-rebuild drift
/// policy. Every variant of one estimator shares its simulation cell, so
/// the reaction ranking compares them on byte-identical fault schedules.
pub const CHAOS_ESTIMATORS: [&str; 6] = [
    "sparsity",
    "independence",
    "independence+decay:0.9",
    "independence+rebuild:auto",
    "correlation-complete",
    "correlation-complete+decay:0.9",
];

/// The chaos grid: the adversarial-dynamics scenarios (Gilbert–Elliott
/// bursts, SRLG cascades, flapping links, diurnal load) streamed through the
/// session API with reaction scoring on — per-fault detection latency,
/// time-to-reconverge and mid-fault error integral land in every JSONL row,
/// ranking the estimator registry (with and without `decay` /
/// `rebuild:auto`) on reaction speed.
pub fn chaos_grid(base_seed: u64) -> SweepGrid {
    let mut grid = SweepGrid::new()
        .base_seed(base_seed)
        .topology(TopologySpec::Toy)
        .topology(TopologySpec::Brite(BriteConfig::tiny(base_seed)))
        .interval_count(200)
        .streaming(10)
        .reaction(0.15);
    for kind in ScenarioKind::chaos() {
        grid = grid.scenario(kind);
    }
    for name in CHAOS_ESTIMATORS {
        grid = grid.estimator(name);
    }
    replicated(grid, REPLICATIONS)
}

/// The sweep-scale grid: the ≥5k-link `BriteConfig::large` topology with
/// the estimators the sparse solver path keeps interactive at that size.
/// Each cell is a full generate→simulate→fit run over ~5.5k unknowns —
/// minutes of dense elimination before the CSR/CG fast path, well under a
/// second per fit with it — so the whole grid is a release-mode workload
/// (`--grid large`), not a unit-test one.
pub fn large_grid(base_seed: u64) -> SweepGrid {
    let mut grid = SweepGrid::new()
        .base_seed(base_seed)
        .topology(TopologySpec::Brite(BriteConfig::large(base_seed)))
        .interval_count(60);
    for kind in [ScenarioKind::RandomCongestion, ScenarioKind::NoIndependence] {
        grid = grid.scenario(kind);
    }
    for name in ["sparsity", "bayesian-independence", "independence"] {
        grid = grid.estimator(name);
    }
    replicated(grid, 2)
}

/// A minutes-long-even-in-debug demo grid: the toy topology, two scenarios,
/// three estimators, two replications.
pub fn demo_grid(base_seed: u64) -> SweepGrid {
    SweepGrid::new()
        .base_seed(base_seed)
        .topology(TopologySpec::Toy)
        .scenario(ScenarioKind::RandomCongestion)
        .scenario(ScenarioKind::NoIndependence)
        .estimator("sparsity")
        .estimator("independence")
        .estimator("correlation-complete")
        .interval_count(60)
        .seed_axis(0)
        .seed_axis(1)
}

/// Resolves a named grid (`fig3` / `fig4` / `table2` / `ci` / `stream` /
/// `chaos` / `large` / `demo`).
pub fn by_name(name: &str, scale: ExperimentScale, base_seed: u64) -> Option<SweepGrid> {
    match name.to_ascii_lowercase().as_str() {
        "fig3" | "figure3" => Some(figure3_grid(scale, base_seed)),
        "fig4" | "figure4" => Some(figure4_grid(scale, base_seed)),
        "table2" => Some(table2_grid(scale, base_seed)),
        "ci" => Some(ci_grid(base_seed)),
        "stream" | "streaming" => Some(stream_grid(base_seed)),
        "chaos" => Some(chaos_grid(base_seed)),
        "large" => Some(large_grid(base_seed)),
        "demo" => Some(demo_grid(base_seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_grids_validate_and_cover_the_figures() {
        let f3 = figure3_grid(ExperimentScale::Small, 1);
        f3.validate().unwrap();
        assert_eq!(f3.num_tasks(), 2 * 5 * 3 * 3);
        let f4 = figure4_grid(ExperimentScale::Small, 1);
        f4.validate().unwrap();
        assert_eq!(f4.num_tasks(), 2 * 3 * 3 * 3);
        assert_eq!(f4.nonstationary_epoch, Some(50));
        let t2 = table2_grid(ExperimentScale::Small, 1);
        t2.validate().unwrap();
        assert_eq!(t2.num_tasks(), 2 * 5 * 6 * 3);
    }

    #[test]
    fn large_grid_validates_at_sweep_scale() {
        // Validation only — executing a cell means generating the ≥5k-link
        // topology, which is a release-mode workload (see `large_smoke` in
        // tomo-prob and `brite_large_fit` in the bench suite).
        let grid = large_grid(3);
        grid.validate().unwrap();
        assert_eq!(grid.num_tasks(), 2 * 3 * 2);
        assert!(matches!(
            grid.topologies.as_slice(),
            [TopologySpec::Brite(cfg)] if cfg.num_paths >= 5_000
        ));
    }

    #[test]
    fn ci_grid_exceeds_five_hundred_runs() {
        let grid = ci_grid(1);
        grid.validate().unwrap();
        assert!(grid.num_tasks() >= 500, "{} tasks", grid.num_tasks());
    }

    #[test]
    fn named_lookup_resolves_all_names() {
        for name in [
            "fig3", "FIG4", "table2", "ci", "stream", "chaos", "large", "demo",
        ] {
            assert!(by_name(name, ExperimentScale::Small, 1).is_some(), "{name}");
        }
        assert!(by_name("nope", ExperimentScale::Small, 1).is_none());
    }

    #[test]
    fn chaos_grid_ranks_the_registry_on_reaction_speed() {
        let grid = chaos_grid(7);
        grid.validate().unwrap();
        assert_eq!(grid.num_tasks(), 2 * 4 * 6 * 3);
        assert_eq!(grid.streaming_chunk, Some(10));
        assert_eq!(grid.reaction_band, Some(0.15));
        use tomo_sim::ScenarioKind;
        for kind in ScenarioKind::chaos() {
            assert!(grid.scenarios.contains(&kind), "{kind:?}");
        }
        // A trimmed instance executes and produces reaction metrics for the
        // probability estimators on the fault-injecting scenarios.
        let mut small = grid;
        small.topologies.truncate(1);
        small.seeds.truncate(1);
        small.scenarios = vec![ScenarioKind::FlappingLinks];
        small.estimators = vec!["independence".into(), "independence+decay:0.9".into()];
        let report = tomo_sweep::SweepRunner::new()
            .threads(2)
            .run(&small)
            .unwrap();
        assert_eq!(report.records.len(), 2);
        for record in &report.records {
            assert_eq!(record.scenario, "Flapping Links");
            assert!(record.reactions.as_ref().is_some_and(|r| !r.is_empty()));
            assert!(record.mid_fault_error.is_some());
        }
    }

    #[test]
    fn stream_grid_covers_the_dynamic_scenarios_and_runs() {
        let grid = stream_grid(5);
        grid.validate().unwrap();
        assert_eq!(grid.num_tasks(), 2 * 2 * 3 * 3);
        // The stream grid runs through the session API (chunked ingest).
        assert_eq!(grid.streaming_chunk, Some(20));
        use tomo_sim::ScenarioKind;
        assert!(grid.scenarios.contains(&ScenarioKind::DriftingLoss));
        assert!(grid.scenarios.contains(&ScenarioKind::CorrelationChurn));
        // A trimmed instance actually executes through the sweep runner.
        let mut small = grid;
        small.topologies.truncate(1);
        small.seeds.truncate(1);
        small.interval_counts = vec![40];
        let report = tomo_sweep::SweepRunner::new()
            .threads(2)
            .run(&small)
            .unwrap();
        assert_eq!(report.records.len(), 2 * 3);
        for record in &report.records {
            assert!(
                record.scenario == "Drifting Loss" || record.scenario == "Correlation Churn",
                "{}",
                record.scenario
            );
        }
    }
}
