//! Experiment harness: regenerates every figure and table of the paper's
//! evaluation.
//!
//! | Experiment | Paper artifact | Entry point | Binary |
//! |---|---|---|---|
//! | E1/E2 | Fig. 3(a)+(b): detection / false-positive rate of the Boolean-Inference algorithms over five scenarios | [`figure3::run_figure3`] | `figure3` |
//! | E3 | Fig. 4(a): mean absolute error of per-link congestion probabilities, Brite topologies | [`figure4::run_figure4a`] | `figure4a` |
//! | E4 | Fig. 4(b): same, Sparse topologies | [`figure4::run_figure4b`] | `figure4b` |
//! | E5 | Fig. 4(c): CDF of the absolute error, No-Independence scenario, Sparse topologies | [`figure4::run_figure4c`] | `figure4c` |
//! | E6 | Fig. 4(d): Correlation-complete error on links vs correlation subsets, Brite vs Sparse | [`figure4::run_figure4d`] | `figure4d` |
//! | E7 | Table 2: assumption matrix of all algorithms | [`table2::table2`] | `table2` |
//!
//! Every run is deterministic given a seed, and every result can be rendered
//! as a text table (the same rows/series the paper plots) or serialized to
//! JSON for archival in `EXPERIMENTS.md`.
//!
//! The [`sweeps`] module re-expresses the figures as parallel
//! [`SweepGrid`]s — the cartesian product of topologies × scenarios ×
//! estimators × interval counts × seeds — and the `sweep` binary fans them
//! across the `tomo-sweep` thread pool into a JSON-lines report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure3;
pub mod figure4;
pub mod report;
pub mod scenarios;
pub mod sweeps;
pub mod table2;

pub use figure3::{run_figure3, Figure3Result, Figure3Row, FIGURE3_ESTIMATORS};
pub use figure4::{
    harness_options, run_figure4a, run_figure4b, run_figure4c, run_figure4d, Figure4Result,
    Figure4Row, Figure4cResult, Figure4dResult, FIGURE4_ESTIMATORS,
};
pub use report::{render_table, Report};
pub use scenarios::{ExperimentScale, ExperimentSetup, TopologyKind};
pub use table2::{table2, Table2};
pub use tomo_core::{estimators, Estimator, EstimatorOptions, Experiment, Pipeline, TomoError};
pub use tomo_sweep::{SweepGrid, SweepRecord, SweepReport, SweepRunner, TopologySpec};
