//! Figure 4: accuracy of the Probability Computation algorithms.
//!
//! * **4(a)** mean absolute error of per-link congestion probabilities on
//!   Brite topologies, for the Random / Concentrated / No-Independence
//!   scenarios (each with non-stationary probabilities layered on top, as in
//!   §5.4);
//! * **4(b)** the same on Sparse topologies;
//! * **4(c)** the CDF of the absolute error for the No-Independence scenario
//!   on Sparse topologies;
//! * **4(d)** the mean absolute error of Correlation-complete when computing
//!   the probability of individual links vs correlation subsets, on Brite vs
//!   Sparse topologies (No-Independence scenario).

use serde::{Deserialize, Serialize};
use tomo_core::{estimators, EstimatorOptions, RunOutcome, TomoError};
use tomo_sim::{ScenarioConfig, ScenarioKind};

// The error statistics live in the pipeline layer now; re-exported here so
// figure-level consumers keep one import site.
pub use tomo_core::score::{link_error_stats, subset_error_stats};

use crate::report::{fmt3, render_table};
use crate::scenarios::{ExperimentScale, ExperimentSetup, TopologyKind};

/// The registry names of the Probability-Computation algorithms Fig. 4
/// compares.
pub const FIGURE4_ESTIMATORS: [&str; 3] = [
    "independence",
    "correlation-heuristic",
    "correlation-complete",
];

/// The scenarios evaluated in Fig. 4(a)/(b), in order. Non-stationarity is
/// layered on top of each (§5.4).
fn figure4_scenarios() -> Vec<ScenarioKind> {
    vec![
        ScenarioKind::RandomCongestion,
        ScenarioKind::ConcentratedCongestion,
        ScenarioKind::NoIndependence,
    ]
}

/// The estimator options used by the figure harness: pairs plus singles,
/// with the `require_common_path` resource knob enabled (§4 of the paper:
/// the operator configures how much of the computable probability space to
/// spend resources on). Restricting multi-link targets to pairs that
/// co-occur on some path keeps the unknown count close to the equation count
/// on the reduced-scale instances.
pub fn harness_options() -> EstimatorOptions {
    EstimatorOptions {
        require_common_path: true,
        ..EstimatorOptions::default()
    }
}

/// Evaluates one registry estimator on an experiment, insisting on the
/// probability capability.
fn evaluate_probability(
    experiment: &tomo_core::Experiment,
    name: &str,
) -> Result<RunOutcome, TomoError> {
    let mut estimator = estimators::with_options(name, &harness_options())?;
    let outcome = experiment.evaluate(estimator.as_mut())?;
    if outcome.estimate.is_none() {
        return Err(TomoError::UnsupportedCapability {
            estimator: outcome.estimator,
            capability: "probability estimation",
        });
    }
    Ok(outcome)
}

/// One row of Fig. 4(a)/(b): the mean absolute error of each algorithm under
/// one scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure4Row {
    /// Scenario label.
    pub scenario: String,
    /// `(algorithm, mean absolute error)` pairs.
    pub mean_error: Vec<(String, f64)>,
}

/// The result of Fig. 4(a) or 4(b).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure4Result {
    /// Which figure panel this is ("4a" or "4b").
    pub panel: String,
    /// Topology family.
    pub topology: String,
    /// One row per scenario.
    pub rows: Vec<Figure4Row>,
    /// Scale and seed.
    pub scale: String,
    /// Seed used.
    pub seed: u64,
}

impl Figure4Result {
    /// Renders the mean-absolute-error table.
    pub fn render(&self) -> String {
        let algos: Vec<String> = self
            .rows
            .first()
            .map(|r| r.mean_error.iter().map(|(a, _)| a.clone()).collect())
            .unwrap_or_default();
        let mut header: Vec<&str> = vec!["Scenario"];
        for a in &algos {
            header.push(a);
        }
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut cells = vec![r.scenario.clone()];
                for (_, e) in &r.mean_error {
                    cells.push(fmt3(*e));
                }
                cells
            })
            .collect();
        render_table(&header, &rows)
    }
}

fn run_figure4_panel(
    panel: &str,
    topology: TopologyKind,
    scale: ExperimentScale,
    seed: u64,
) -> Result<Figure4Result, TomoError> {
    let setup = ExperimentSetup::new(topology, scale, seed);
    let mut rows = Vec::new();
    for kind in figure4_scenarios() {
        // §5.4: non-stationarity is added on top of every scenario.
        let scenario = ScenarioConfig::for_kind(kind).with_nonstationary(50);
        let experiment = setup.experiment(scenario)?;
        let mut mean_error = Vec::new();
        for name in FIGURE4_ESTIMATORS {
            let outcome = evaluate_probability(&experiment, name)?;
            let stats = outcome.link_errors.expect("probability outcome has errors");
            mean_error.push((outcome.estimator, stats.mean()));
        }
        rows.push(Figure4Row {
            scenario: kind.label().to_string(),
            mean_error,
        });
    }
    Ok(Figure4Result {
        panel: panel.to_string(),
        topology: topology.label().to_string(),
        rows,
        scale: format!("{scale:?}"),
        seed,
    })
}

/// Runs Fig. 4(a): per-link error on Brite topologies.
pub fn run_figure4a(scale: ExperimentScale, seed: u64) -> Result<Figure4Result, TomoError> {
    run_figure4_panel("4a", TopologyKind::Brite, scale, seed)
}

/// Runs Fig. 4(b): per-link error on Sparse topologies.
pub fn run_figure4b(scale: ExperimentScale, seed: u64) -> Result<Figure4Result, TomoError> {
    run_figure4_panel("4b", TopologyKind::Sparse, scale, seed)
}

/// The result of Fig. 4(c): the CDF of the absolute error of each algorithm
/// for the No-Independence scenario on Sparse topologies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure4cResult {
    /// `(algorithm, [(error, cumulative fraction)])` series.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// Fraction of links each algorithm estimates within 0.1 absolute error
    /// (the statistic quoted in §5.4).
    pub fraction_within_01: Vec<(String, f64)>,
    /// Scale and seed.
    pub scale: String,
    /// Seed used.
    pub seed: u64,
}

impl Figure4cResult {
    /// Renders the CDF series as a table (one row per x value).
    pub fn render(&self) -> String {
        let mut header: Vec<&str> = vec!["Abs. error"];
        for (a, _) in &self.series {
            header.push(a);
        }
        let npoints = self.series.first().map(|(_, s)| s.len()).unwrap_or(0);
        let mut rows = Vec::new();
        for i in 0..npoints {
            let mut cells = vec![fmt3(self.series[0].1[i].0)];
            for (_, s) in &self.series {
                cells.push(fmt3(s[i].1));
            }
            rows.push(cells);
        }
        render_table(&header, &rows)
    }
}

/// Runs Fig. 4(c).
pub fn run_figure4c(scale: ExperimentScale, seed: u64) -> Result<Figure4cResult, TomoError> {
    let setup = ExperimentSetup::new(TopologyKind::Sparse, scale, seed);
    let scenario = ScenarioConfig::for_kind(ScenarioKind::NoIndependence).with_nonstationary(50);
    let experiment = setup.experiment(scenario)?;
    let mut series = Vec::new();
    let mut fraction_within_01 = Vec::new();
    for name in FIGURE4_ESTIMATORS {
        let outcome = evaluate_probability(&experiment, name)?;
        let stats = outcome.link_errors.expect("probability outcome has errors");
        fraction_within_01.push((outcome.estimator.clone(), stats.fraction_within(0.1)));
        series.push((outcome.estimator, stats.cdf().series(0.0, 1.0, 21)));
    }
    Ok(Figure4cResult {
        series,
        fraction_within_01,
        scale: format!("{scale:?}"),
        seed,
    })
}

/// The result of Fig. 4(d): Correlation-complete's mean absolute error when
/// computing the congestion probability of individual links vs correlation
/// subsets, on Brite vs Sparse topologies (No-Independence scenario).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure4dResult {
    /// `(topology, links mean error, subsets mean error, #subsets scored)`.
    pub rows: Vec<(String, f64, f64, usize)>,
    /// Scale and seed.
    pub scale: String,
    /// Seed used.
    pub seed: u64,
}

impl Figure4dResult {
    /// Renders the table.
    pub fn render(&self) -> String {
        let header = ["Topology", "links", "correlation subsets", "#subsets"];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(t, l, s, n)| vec![t.clone(), fmt3(*l), fmt3(*s), n.to_string()])
            .collect();
        render_table(&header, &rows)
    }
}

/// Runs Fig. 4(d).
pub fn run_figure4d(scale: ExperimentScale, seed: u64) -> Result<Figure4dResult, TomoError> {
    let mut rows = Vec::new();
    for topology in [TopologyKind::Brite, TopologyKind::Sparse] {
        let setup = ExperimentSetup::new(topology, scale, seed);
        let scenario =
            ScenarioConfig::for_kind(ScenarioKind::NoIndependence).with_nonstationary(50);
        let experiment = setup.experiment(scenario)?;
        let outcome = evaluate_probability(&experiment, "correlation-complete")?;
        let estimate = outcome.estimate.expect("probability outcome has estimate");
        let link_stats = outcome.link_errors.expect("probability outcome has errors");
        let subset_stats = subset_error_stats(
            experiment.network(),
            experiment.output(),
            &estimate,
            harness_options().effective_max_subset_size(),
        );
        rows.push((
            topology.label().to_string(),
            link_stats.mean(),
            subset_stats.mean(),
            subset_stats.len(),
        ));
    }
    Ok(Figure4dResult {
        rows,
        scale: format!("{scale:?}"),
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_figure4a_has_expected_shape() {
        let result = run_figure4a(ExperimentScale::Small, 5).expect("figure 4a runs");
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            assert_eq!(row.mean_error.len(), 3);
            for (_, e) in &row.mean_error {
                assert!((0.0..=1.0).contains(e), "error {e}");
            }
        }
        assert!(result.render().contains("Correlation-complete"));
    }

    #[test]
    fn small_scale_figure4c_series_are_monotone() {
        let result = run_figure4c(ExperimentScale::Small, 5).expect("figure 4c runs");
        assert_eq!(result.series.len(), 3);
        for (_, s) in &result.series {
            for w in s.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-12);
            }
            assert!((s.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn small_scale_figure4d_scores_both_topologies() {
        let result = run_figure4d(ExperimentScale::Small, 5).expect("figure 4d runs");
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0].0, "Brite");
        assert_eq!(result.rows[1].0, "Sparse");
        for (_, l, s, _) in &result.rows {
            assert!((0.0..=1.0).contains(l));
            assert!((0.0..=1.0).contains(s));
        }
    }
}
