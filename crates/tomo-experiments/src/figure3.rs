//! Figure 3: performance of the Boolean-Inference algorithms under the five
//! congestion scenarios — (a) detection rate and (b) false-positive rate,
//! averaged over the intervals of each experiment.

use serde::{Deserialize, Serialize};
use tomo_core::{estimators, TomoError};
use tomo_sim::{ScenarioConfig, ScenarioKind};

use crate::report::{fmt3, render_table};
use crate::scenarios::{ExperimentScale, ExperimentSetup, TopologyKind};

/// The registry names of the Boolean-Inference algorithms Fig. 3 compares.
pub const FIGURE3_ESTIMATORS: [&str; 3] =
    ["sparsity", "bayesian-independence", "bayesian-correlation"];

/// The per-algorithm scores for one scenario (one group of bars in Fig. 3).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure3Row {
    /// Scenario label (x-axis of Fig. 3).
    pub scenario: String,
    /// Topology family the scenario ran on.
    pub topology: String,
    /// `(algorithm, detection rate, false-positive rate)` triples.
    pub scores: Vec<(String, f64, f64)>,
}

/// The full Figure 3 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure3Result {
    /// One row per scenario, in the order of the paper's figure.
    pub rows: Vec<Figure3Row>,
    /// Scale the experiment ran at.
    pub scale: String,
    /// Seed.
    pub seed: u64,
}

impl Figure3Result {
    /// Renders the detection-rate table (Fig. 3a).
    pub fn render_detection(&self) -> String {
        self.render(true)
    }

    /// Renders the false-positive-rate table (Fig. 3b).
    pub fn render_false_positives(&self) -> String {
        self.render(false)
    }

    fn render(&self, detection: bool) -> String {
        let algos: Vec<String> = self
            .rows
            .first()
            .map(|r| r.scores.iter().map(|(a, _, _)| a.clone()).collect())
            .unwrap_or_default();
        let mut header: Vec<&str> = vec!["Scenario"];
        for a in &algos {
            header.push(a);
        }
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut cells = vec![r.scenario.clone()];
                for (_, d, f) in &r.scores {
                    cells.push(fmt3(if detection { *d } else { *f }));
                }
                cells
            })
            .collect();
        render_table(&header, &rows)
    }
}

/// The scenario list of Fig. 3, with the topology each runs on.
fn figure3_scenarios() -> Vec<(ScenarioKind, TopologyKind)> {
    vec![
        (ScenarioKind::RandomCongestion, TopologyKind::Brite),
        (ScenarioKind::ConcentratedCongestion, TopologyKind::Brite),
        (ScenarioKind::NoIndependence, TopologyKind::Brite),
        (ScenarioKind::NoStationarity, TopologyKind::Brite),
        (ScenarioKind::SparseTopology, TopologyKind::Sparse),
    ]
}

/// Runs the Figure 3 experiment at the given scale.
pub fn run_figure3(scale: ExperimentScale, seed: u64) -> Result<Figure3Result, TomoError> {
    let mut rows = Vec::new();
    for (kind, topology) in figure3_scenarios() {
        let setup = ExperimentSetup::new(topology, scale, seed);
        let experiment = setup.experiment(ScenarioConfig::for_kind(kind))?;

        let mut scores = Vec::new();
        for name in FIGURE3_ESTIMATORS {
            let mut estimator = estimators::by_name(name)?;
            let outcome = experiment.evaluate(estimator.as_mut())?;
            let score =
                outcome
                    .inference_score
                    .ok_or_else(|| TomoError::UnsupportedCapability {
                        estimator: outcome.estimator.clone(),
                        capability: "per-interval inference",
                    })?;
            scores.push((
                outcome.estimator,
                score.detection_rate(),
                score.false_positive_rate(),
            ));
        }
        rows.push(Figure3Row {
            scenario: kind.label().to_string(),
            topology: topology.label().to_string(),
            scores,
        });
    }
    Ok(Figure3Result {
        rows,
        scale: format!("{scale:?}"),
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_figure3_has_expected_shape() {
        let result = run_figure3(ExperimentScale::Small, 7).expect("figure 3 runs");
        assert_eq!(result.rows.len(), 5);
        for row in &result.rows {
            assert_eq!(row.scores.len(), 3);
            for (_, d, f) in &row.scores {
                assert!((0.0..=1.0).contains(d), "detection {d}");
                assert!((0.0..=1.0).contains(f), "fpr {f}");
            }
        }
        // The last row is the Sparse-topology scenario.
        assert_eq!(result.rows[4].topology, "Sparse");
        // Rendering produces one line per scenario plus header/separator.
        let text = result.render_detection();
        assert_eq!(text.lines().count(), 7);
        assert!(text.contains("Sparsity"));
    }
}
