//! Plain-text and JSON reporting helpers shared by the figure binaries.

use serde::Serialize;

/// Renders a text table with a header row; columns are padded to the widest
/// cell. This is the "same rows the paper plots" output format of every
/// figure binary.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A titled report that can be printed and serialized.
#[derive(Clone, Debug, Serialize)]
pub struct Report<T: Serialize> {
    /// Report title (e.g. "Figure 3(a): Detection Rate").
    pub title: String,
    /// The structured payload.
    pub data: T,
    /// The rendered text table.
    pub text: String,
}

impl<T: Serialize> Report<T> {
    /// Creates a report.
    pub fn new(title: impl Into<String>, data: T, text: String) -> Self {
        Self {
            title: title.into(),
            data,
            text,
        }
    }

    /// Serializes the structured payload to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&serde_json::json!({
            "title": self.title,
            "data": &self.data,
        }))
        .unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
    }
}

/// Formats a probability/rate with three decimals.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["scenario", "x"],
            &[
                vec!["Random Congestion".to_string(), "0.9".to_string()],
                vec!["Sparse".to_string(), "0.75".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("scenario"));
        assert!(lines[2].starts_with("Random Congestion"));
        // The second column starts at the same offset in every row.
        let col = lines[0].find('x').unwrap();
        assert_eq!(&lines[2][col..col + 3], "0.9");
    }

    #[test]
    fn report_serializes() {
        let r = Report::new("t", vec![1, 2, 3], "text".to_string());
        let json = r.to_json();
        assert!(json.contains("\"title\""));
        assert!(json.contains("[\n"));
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt3(1.0), "1.000");
    }
}
