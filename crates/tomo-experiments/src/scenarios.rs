//! Canonical experiment setups: topology family, scale, scenario and
//! simulation parameters, mirroring §3.2 of the paper.

use serde::{Deserialize, Serialize};
use tomo_core::{Experiment, Pipeline, TomoError};
use tomo_graph::Network;
use tomo_sim::{MeasurementMode, ScenarioConfig};
use tomo_topology::{BriteConfig, BriteGenerator, SparseConfig, SparseGenerator};

/// Which family of topologies an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Dense BRITE-style synthetic topology (≈1000 links, 1500 paths at paper
    /// scale).
    Brite,
    /// Sparse traceroute-derived topology (≈2000 links, 1500 paths at paper
    /// scale).
    Sparse,
}

impl TopologyKind {
    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyKind::Brite => "Brite",
            TopologyKind::Sparse => "Sparse",
        }
    }
}

/// How large an experiment instance to run.
///
/// The paper's exact instance sizes (the `Paper` scale) make a full figure
/// regeneration take tens of minutes; the `Medium` scale keeps the same
/// qualitative structure (density contrast, correlation structure, 10 %
/// congestible links) at roughly half the size and is the default for the
/// figure binaries. `Small` is for unit/integration tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Tiny instances for tests (tens of links, ~150 intervals).
    Small,
    /// Default scale for figure regeneration (hundreds of links, 400
    /// intervals).
    Medium,
    /// The paper's instance sizes (≈1000/2000 links, 1500 paths, 1000
    /// intervals).
    Paper,
}

impl ExperimentScale {
    /// Parses a scale name (`small`, `medium`, `paper`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(Self::Small),
            "medium" => Some(Self::Medium),
            "paper" => Some(Self::Paper),
            _ => None,
        }
    }

    /// Number of measurement intervals per experiment.
    pub fn num_intervals(&self) -> usize {
        match self {
            Self::Small => 150,
            Self::Medium => 300,
            Self::Paper => 1000,
        }
    }

    /// Measurement mode (probe count per interval).
    pub fn measurement(&self) -> MeasurementMode {
        match self {
            Self::Small => MeasurementMode::PacketProbes {
                packets_per_interval: 200,
            },
            Self::Medium => MeasurementMode::PacketProbes {
                packets_per_interval: 300,
            },
            Self::Paper => MeasurementMode::PacketProbes {
                packets_per_interval: 400,
            },
        }
    }

    /// The BRITE generator configuration at this scale.
    pub fn brite_config(&self, seed: u64) -> BriteConfig {
        match self {
            Self::Small => BriteConfig::tiny(seed),
            Self::Medium => BriteConfig {
                num_ases: 28,
                routers_per_as: 8,
                as_peering_degree: 2,
                extra_intra_edges_per_router: 1,
                peering_links_per_adjacency: 2,
                num_paths: 450,
                seed,
            },
            Self::Paper => BriteConfig {
                seed,
                ..BriteConfig::default()
            },
        }
    }

    /// The sparse-topology generator configuration at this scale.
    pub fn sparse_config(&self, seed: u64) -> SparseConfig {
        match self {
            Self::Small => SparseConfig::tiny(seed),
            Self::Medium => SparseConfig {
                num_ases: 150,
                routers_per_as: 5,
                as_peering_degree: 1,
                extra_intra_edges_per_router: 1,
                peering_links_per_adjacency: 1,
                num_vantage_points: 3,
                num_traceroutes: 620,
                discard_probability: 0.2,
                seed,
            },
            Self::Paper => SparseConfig {
                seed,
                ..SparseConfig::default()
            },
        }
    }
}

/// A fully specified experiment: topology family + scale + seed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentSetup {
    /// Topology family.
    pub topology: TopologyKind,
    /// Instance scale.
    pub scale: ExperimentScale,
    /// Seed for topology generation and simulation.
    pub seed: u64,
}

impl ExperimentSetup {
    /// Creates a setup.
    pub fn new(topology: TopologyKind, scale: ExperimentScale, seed: u64) -> Self {
        Self {
            topology,
            scale,
            seed,
        }
    }

    /// Generates the measured network.
    pub fn network(&self) -> Result<Network, TomoError> {
        let network = match self.topology {
            TopologyKind::Brite => {
                BriteGenerator::new(self.scale.brite_config(self.seed)).generate()?
            }
            TopologyKind::Sparse => {
                SparseGenerator::new(self.scale.sparse_config(self.seed)).generate()?
            }
        };
        Ok(network)
    }

    /// Builds the pipeline for a congestion scenario at this setup's scale:
    /// the measured network plus intervals, probing and seed.
    pub fn pipeline(&self, scenario: ScenarioConfig) -> Result<Pipeline, TomoError> {
        Ok(Pipeline::on(self.network()?)
            .scenario(scenario)
            .intervals(self.scale.num_intervals())
            .measurement(self.scale.measurement())
            // Offset the simulation seed from the topology seed so the two
            // random processes are decoupled but still reproducible.
            .seed(self.seed.wrapping_mul(0x9e37_79b9).wrapping_add(17)))
    }

    /// Generates the network and simulates one scenario on it — the
    /// simulate/observe half of the pipeline, ready to evaluate estimators.
    pub fn experiment(&self, scenario: ScenarioConfig) -> Result<Experiment, TomoError> {
        self.pipeline(scenario)?.simulate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_sim::ScenarioConfig;

    #[test]
    fn scale_parsing() {
        assert_eq!(
            ExperimentScale::parse("small"),
            Some(ExperimentScale::Small)
        );
        assert_eq!(
            ExperimentScale::parse("PAPER"),
            Some(ExperimentScale::Paper)
        );
        assert_eq!(ExperimentScale::parse("huge"), None);
    }

    #[test]
    fn paper_scale_matches_paper_parameters() {
        let s = ExperimentScale::Paper;
        assert_eq!(s.num_intervals(), 1000);
        assert_eq!(s.brite_config(1).num_paths, 1500);
    }

    #[test]
    fn small_setup_runs_end_to_end() {
        let setup = ExperimentSetup::new(TopologyKind::Brite, ExperimentScale::Small, 3);
        let experiment = setup
            .experiment(ScenarioConfig::random_congestion())
            .expect("small experiment simulates");
        let out = experiment.output();
        assert_eq!(out.observations.num_intervals(), 150);
        assert_eq!(
            out.ground_truth.num_links(),
            experiment.network().num_links()
        );
        assert!(!out.ground_truth.congestible_links().is_empty());
    }

    #[test]
    fn labels() {
        assert_eq!(TopologyKind::Brite.label(), "Brite");
        assert_eq!(TopologyKind::Sparse.label(), "Sparse");
    }
}
