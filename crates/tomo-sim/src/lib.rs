//! Congestion and measurement simulator.
//!
//! Implements the simulation methodology of §3.2 of the paper:
//!
//! * at the beginning of an experiment, 10 % of the AS-level links are given
//!   a non-zero congestion probability drawn uniformly from (0, 1); which
//!   links, and whether they are mutually correlated, depends on the
//!   *scenario* ([`scenario`]);
//! * link correlations are physical: AS-level links that share an underlying
//!   router-level link become congested together ([`correlation_model`]);
//! * at the beginning of every interval each link is declared good or
//!   congested (respecting the configured marginal and joint probabilities)
//!   and is assigned a packet-loss rate from the loss model of
//!   Padmanabhan et al. — good links lose a fraction in (0, 0.01), congested
//!   links a fraction in (0.01, 1) ([`loss`]);
//! * probe packets are sent along every measurement path and dropped
//!   per-link with the assigned loss rates; a path is declared congested in
//!   an interval when its empirical loss fraction exceeds the `d`-link
//!   threshold `1 − (1−f)^d` ([`simulator`]);
//! * the resulting per-interval path observations ([`observation`]) are what
//!   the tomography algorithms consume, while the per-interval link states
//!   ([`state`]) are the ground truth the metrics compare against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation_model;
pub mod dynamics;
pub mod loss;
pub mod observation;
pub mod scenario;
pub mod simulator;
pub mod state;
pub mod window;

pub use correlation_model::{CongestionModel, Driver};
pub use loss::{LossModel, MeasurementMode};
pub use observation::PathObservations;
pub use scenario::{CongestiblePlacement, ProbabilityEvolution, ScenarioConfig, ScenarioKind};
pub use simulator::{SimulationConfig, SimulationOutput, Simulator};
pub use state::{EpochMarginals, GroundTruth};
pub use window::ObservationWindow;
