//! Ground truth bookkeeping: the per-interval link states the simulator drew
//! and the frequencies derived from them.
//!
//! The tomography algorithms never see this; it exists so the metrics can
//! compare inferred quantities against what actually happened.

use serde::{Deserialize, Serialize};
use tomo_graph::LinkId;

/// The model marginals that were in force from one epoch boundary onwards.
///
/// A non-stationary run records one of these per epoch, giving the truth *as
/// a function of time* — what the chaos reaction metrics compare streaming
/// estimates against.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EpochMarginals {
    /// First measurement interval the epoch covers.
    pub start: usize,
    /// Model marginal `P(X_e = 1)` per link during the epoch.
    pub marginals: Vec<f64>,
}

/// Ground truth of one simulated experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroundTruth {
    num_links: usize,
    num_intervals: usize,
    /// Row-major: `congested[t * num_links + l]`.
    congested: Vec<bool>,
    /// Links that had a non-zero congestion probability in at least one
    /// epoch.
    congestible: Vec<LinkId>,
    /// Time-averaged model marginal `P(X_e = 1)` per link (averaged over the
    /// epochs of a non-stationary run).
    model_marginals: Vec<f64>,
    /// Per-epoch marginal timeline, ordered by `start`. `Option` so ground
    /// truth serialized before the field existed still deserializes (the
    /// vendored serde shim maps missing fields to `None`).
    epoch_marginals: Option<Vec<EpochMarginals>>,
}

impl GroundTruth {
    /// Creates an empty ground-truth recorder.
    pub fn new(num_links: usize, num_intervals: usize) -> Self {
        Self {
            num_links,
            num_intervals,
            congested: vec![false; num_links * num_intervals],
            congestible: Vec::new(),
            model_marginals: vec![0.0; num_links],
            epoch_marginals: None,
        }
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Number of intervals.
    pub fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    /// Records the link states of one interval.
    pub fn record_interval(&mut self, t: usize, states: &[bool]) {
        assert_eq!(states.len(), self.num_links, "state length mismatch");
        assert!(t < self.num_intervals, "interval out of range");
        let base = t * self.num_links;
        self.congested[base..base + self.num_links].copy_from_slice(states);
    }

    /// Sets the congestible links (for reporting).
    pub fn set_congestible(&mut self, links: Vec<LinkId>) {
        self.congestible = links;
    }

    /// Links that had a non-zero congestion probability.
    pub fn congestible_links(&self) -> &[LinkId] {
        &self.congestible
    }

    /// Accumulates model marginals, weighted by the fraction of intervals the
    /// corresponding epoch covers (so the stored value is the time-averaged
    /// marginal of a non-stationary experiment).
    pub fn add_model_marginals(&mut self, marginals: &[f64], weight: f64) {
        assert_eq!(marginals.len(), self.num_links);
        for (acc, &m) in self.model_marginals.iter_mut().zip(marginals) {
            *acc += weight * m;
        }
    }

    /// The time-averaged model marginal congestion probability of a link.
    pub fn model_marginal(&self, link: LinkId) -> f64 {
        self.model_marginals[link.index()]
    }

    /// Records the model marginals in force from interval `start` onwards.
    /// Epochs must be recorded in increasing `start` order.
    pub fn record_epoch_marginals(&mut self, start: usize, marginals: &[f64]) {
        assert_eq!(marginals.len(), self.num_links, "marginal length mismatch");
        let timeline = self.epoch_marginals.get_or_insert_with(Vec::new);
        if let Some(last) = timeline.last() {
            assert!(last.start < start, "epochs must be recorded in order");
        }
        timeline.push(EpochMarginals {
            start,
            marginals: marginals.to_vec(),
        });
    }

    /// The per-epoch marginal timeline, if the simulator recorded one.
    pub fn epoch_marginals(&self) -> &[EpochMarginals] {
        self.epoch_marginals.as_deref().unwrap_or(&[])
    }

    /// The model marginals in force during interval `t`: the last recorded
    /// epoch with `start <= t`, falling back to the time-averaged marginals
    /// when no timeline was recorded.
    pub fn marginals_at(&self, t: usize) -> &[f64] {
        let timeline = self.epoch_marginals();
        let idx = timeline.partition_point(|e| e.start <= t);
        if idx == 0 {
            &self.model_marginals
        } else {
            &timeline[idx - 1].marginals
        }
    }

    /// Whether a link was congested during interval `t` (`X_e(t) = 1`).
    pub fn is_congested(&self, link: LinkId, t: usize) -> bool {
        self.congested[t * self.num_links + link.index()]
    }

    /// The set of congested links `E^c(t)` during interval `t`.
    pub fn congested_links(&self, t: usize) -> Vec<LinkId> {
        (0..self.num_links)
            .map(LinkId)
            .filter(|&l| self.is_congested(l, t))
            .collect()
    }

    /// Empirical congestion frequency of a single link over the experiment:
    /// the fraction of intervals during which it was congested. This is the
    /// reference value for the Fig. 4 absolute-error metric.
    pub fn link_frequency(&self, link: LinkId) -> f64 {
        if self.num_intervals == 0 {
            return 0.0;
        }
        let count = (0..self.num_intervals)
            .filter(|&t| self.is_congested(link, t))
            .count();
        count as f64 / self.num_intervals as f64
    }

    /// Empirical frequency with which *all* links of a set were congested
    /// simultaneously.
    pub fn set_frequency(&self, links: &[LinkId]) -> f64 {
        if self.num_intervals == 0 || links.is_empty() {
            return 0.0;
        }
        let count = (0..self.num_intervals)
            .filter(|&t| links.iter().all(|&l| self.is_congested(l, t)))
            .count();
        count as f64 / self.num_intervals as f64
    }

    /// Empirical frequency with which all links of a set were simultaneously
    /// good (`P(∩ X_e = 0)` estimated from the truth).
    pub fn set_good_frequency(&self, links: &[LinkId]) -> f64 {
        if self.num_intervals == 0 {
            return 1.0;
        }
        let count = (0..self.num_intervals)
            .filter(|&t| links.iter().all(|&l| !self.is_congested(l, t)))
            .count();
        count as f64 / self.num_intervals as f64
    }

    /// Links that were congested during at least one interval.
    pub fn ever_congested_links(&self) -> Vec<LinkId> {
        (0..self.num_links)
            .map(LinkId)
            .filter(|&l| (0..self.num_intervals).any(|t| self.is_congested(l, t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroundTruth {
        let mut gt = GroundTruth::new(3, 4);
        gt.record_interval(0, &[true, false, false]);
        gt.record_interval(1, &[true, true, false]);
        gt.record_interval(2, &[false, false, false]);
        gt.record_interval(3, &[true, true, false]);
        gt.set_congestible(vec![LinkId(0), LinkId(1)]);
        gt
    }

    #[test]
    fn per_interval_queries() {
        let gt = sample();
        assert!(gt.is_congested(LinkId(0), 0));
        assert!(!gt.is_congested(LinkId(2), 3));
        assert_eq!(gt.congested_links(1), vec![LinkId(0), LinkId(1)]);
        assert_eq!(gt.congested_links(2), vec![]);
    }

    #[test]
    fn frequencies() {
        let gt = sample();
        assert!((gt.link_frequency(LinkId(0)) - 0.75).abs() < 1e-12);
        assert!((gt.link_frequency(LinkId(1)) - 0.5).abs() < 1e-12);
        assert_eq!(gt.link_frequency(LinkId(2)), 0.0);
        // Both 0 and 1 congested in t1 and t3.
        assert!((gt.set_frequency(&[LinkId(0), LinkId(1)]) - 0.5).abs() < 1e-12);
        assert!((gt.set_good_frequency(&[LinkId(0), LinkId(1)]) - 0.25).abs() < 1e-12);
        assert_eq!(gt.ever_congested_links(), vec![LinkId(0), LinkId(1)]);
    }

    #[test]
    fn model_marginal_accumulation() {
        let mut gt = GroundTruth::new(2, 10);
        gt.add_model_marginals(&[0.2, 0.0], 0.5);
        gt.add_model_marginals(&[0.6, 0.0], 0.5);
        assert!((gt.model_marginal(LinkId(0)) - 0.4).abs() < 1e-12);
        assert_eq!(gt.model_marginal(LinkId(1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "state length mismatch")]
    fn record_rejects_wrong_length() {
        let mut gt = GroundTruth::new(3, 1);
        gt.record_interval(0, &[true]);
    }

    #[test]
    fn epoch_marginal_timeline_lookup() {
        let mut gt = GroundTruth::new(2, 30);
        gt.add_model_marginals(&[0.25, 0.0], 1.0);
        // No timeline yet: fall back to the time-averaged marginals.
        assert_eq!(gt.marginals_at(5), &[0.25, 0.0]);
        gt.record_epoch_marginals(0, &[0.1, 0.2]);
        gt.record_epoch_marginals(10, &[0.9, 0.2]);
        gt.record_epoch_marginals(20, &[0.5, 0.2]);
        assert_eq!(gt.marginals_at(0), &[0.1, 0.2]);
        assert_eq!(gt.marginals_at(9), &[0.1, 0.2]);
        assert_eq!(gt.marginals_at(10), &[0.9, 0.2]);
        assert_eq!(gt.marginals_at(19), &[0.9, 0.2]);
        assert_eq!(gt.marginals_at(29), &[0.5, 0.2]);
        assert_eq!(gt.epoch_marginals().len(), 3);
    }

    #[test]
    #[should_panic(expected = "epochs must be recorded in order")]
    fn epoch_marginals_reject_out_of_order() {
        let mut gt = GroundTruth::new(1, 10);
        gt.record_epoch_marginals(5, &[0.1]);
        gt.record_epoch_marginals(5, &[0.2]);
    }

    #[test]
    fn ground_truth_without_timeline_deserializes() {
        // Ground truth serialized before the epoch-marginal timeline existed
        // has no `epoch_marginals` key; it must still deserialize (to an
        // empty timeline).
        let mut gt = GroundTruth::new(1, 2);
        gt.record_interval(0, &[true]);
        gt.record_interval(1, &[false]);
        let mut val = serde_json::to_value(&gt);
        if let serde_json::Value::Object(fields) = &mut val {
            fields.retain(|(k, _)| k != "epoch_marginals");
        }
        let text = serde_json::to_string(&val).expect("to text");
        let restored: GroundTruth = serde_json::from_str(&text).expect("deserialize");
        assert!(restored.epoch_marginals().is_empty());
        assert!(restored.is_congested(LinkId(0), 0));
    }
}
