//! The interval-level simulator tying topology, scenario, congestion model
//! and loss model together.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use tomo_chaos::FaultEvent;
use tomo_graph::Network;

use crate::correlation_model::CongestionModel;
use crate::loss::{LossModel, MeasurementMode};
use crate::observation::PathObservations;
use crate::scenario::ScenarioConfig;
use crate::state::GroundTruth;

/// Configuration of one simulated experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of measurement intervals `T` (1000 in the paper's Fig. 3).
    pub num_intervals: usize,
    /// The congestion scenario.
    pub scenario: ScenarioConfig,
    /// The link-level loss model.
    pub loss: LossModel,
    /// How path observations are produced.
    pub measurement: MeasurementMode,
    /// RNG seed; experiments are fully deterministic given the seed.
    pub seed: u64,
}

impl SimulationConfig {
    /// A paper-like configuration: 1000 intervals, packet probing.
    pub fn paper_like(scenario: ScenarioConfig, seed: u64) -> Self {
        Self {
            num_intervals: 1000,
            scenario,
            loss: LossModel::default(),
            measurement: MeasurementMode::default(),
            seed,
        }
    }

    /// A fast configuration for unit tests: few intervals, ideal monitoring.
    pub fn fast(scenario: ScenarioConfig, num_intervals: usize, seed: u64) -> Self {
        Self {
            num_intervals,
            scenario,
            loss: LossModel::default(),
            measurement: MeasurementMode::Ideal,
            seed,
        }
    }
}

/// The result of a simulation: what the monitor saw and what actually
/// happened.
#[derive(Clone, Debug)]
pub struct SimulationOutput {
    /// The per-interval path observations (input to the algorithms).
    pub observations: PathObservations,
    /// The per-interval link states and derived frequencies (ground truth for
    /// the metrics).
    pub ground_truth: GroundTruth,
    /// The congestion model of the *first* epoch (placement + initial
    /// probabilities). For stationary runs this fully describes the process.
    pub initial_model: CongestionModel,
    /// Fault events the scenario's evolution injected at epoch boundaries
    /// (empty for stationary runs and for the paper's evolutions), ordered by
    /// interval.
    pub fault_events: Vec<FaultEvent>,
}

/// The simulator.
#[derive(Clone, Debug)]
pub struct Simulator {
    config: SimulationConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimulationConfig) -> Self {
        assert!(config.num_intervals > 0, "need at least one interval");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Runs the experiment over the given network.
    pub fn run(&self, network: &Network) -> SimulationOutput {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut model = cfg.scenario.build_model(network, &mut rng);
        let initial_model = model.clone();

        let num_links = network.num_links();
        let mut ground_truth = GroundTruth::new(num_links, cfg.num_intervals);
        ground_truth.set_congestible(model.congestible_links());

        let mut observations = PathObservations::new(network.num_paths(), cfg.num_intervals);

        // Pre-compute per-epoch weights for the time-averaged model marginal.
        let epoch_len = if cfg.scenario.stationary {
            cfg.num_intervals
        } else {
            cfg.scenario.epoch_len.max(1)
        };

        let mut fault_events = Vec::new();
        let mut t = 0usize;
        let mut epoch = 0usize;
        while t < cfg.num_intervals {
            let this_epoch = epoch_len.min(cfg.num_intervals - t);
            // Record this epoch's model marginals: weighted into the
            // time-averaged marginal and, for non-stationary runs, appended
            // to the per-epoch truth timeline.
            let marginals: Vec<f64> = network.link_ids().map(|l| model.marginal(l)).collect();
            ground_truth
                .add_model_marginals(&marginals, this_epoch as f64 / cfg.num_intervals as f64);
            if !cfg.scenario.stationary {
                ground_truth.record_epoch_marginals(t, &marginals);
            }

            for _ in 0..this_epoch {
                self.simulate_interval(
                    network,
                    &model,
                    &mut rng,
                    t,
                    &mut ground_truth,
                    &mut observations,
                );
                t += 1;
            }

            if !cfg.scenario.stationary && t < cfg.num_intervals {
                epoch += 1;
                let (next, events) = cfg.scenario.evolve_model(&model, epoch, t, &mut rng);
                model = next;
                fault_events.extend(events);
            }
        }

        SimulationOutput {
            observations,
            ground_truth,
            initial_model,
            fault_events,
        }
    }

    fn simulate_interval(
        &self,
        network: &Network,
        model: &CongestionModel,
        rng: &mut StdRng,
        t: usize,
        ground_truth: &mut GroundTruth,
        observations: &mut PathObservations,
    ) {
        let cfg = &self.config;
        let states = model.sample_interval(rng, network.num_links());
        ground_truth.record_interval(t, &states);

        match cfg.measurement {
            MeasurementMode::Ideal => {
                for path in network.paths() {
                    let congested = path.links.iter().any(|l| states[l.index()]);
                    observations.set_congested(path.id, t, congested);
                }
            }
            MeasurementMode::PacketProbes {
                packets_per_interval,
            } => {
                // Draw this interval's loss rate for every link once.
                let loss_rates: Vec<f64> = states
                    .iter()
                    .map(|&congested| cfg.loss.draw_loss_rate(rng, congested))
                    .collect();
                for path in network.paths() {
                    let mut dropped = 0usize;
                    for _ in 0..packets_per_interval {
                        for &l in &path.links {
                            if rng.gen_bool(loss_rates[l.index()]) {
                                dropped += 1;
                                break;
                            }
                        }
                    }
                    let loss_fraction = dropped as f64 / packets_per_interval.max(1) as f64;
                    let congested = cfg.loss.path_is_congested_sampled(
                        loss_fraction,
                        path.len(),
                        packets_per_interval,
                    );
                    observations.set_congested(path.id, t, congested);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use tomo_graph::toy::{fig1_case1, E1, E2, E3, E4};
    use tomo_graph::{LinkId, PathId};

    fn toy_sim(measurement: MeasurementMode, seed: u64) -> SimulationOutput {
        let net = fig1_case1();
        let mut scenario = ScenarioConfig::random_congestion();
        scenario.congestible_fraction = 0.5; // 2 of the 4 toy links
        let config = SimulationConfig {
            num_intervals: 400,
            scenario,
            loss: LossModel::default(),
            measurement,
            seed,
        };
        Simulator::new(config).run(&net)
    }

    #[test]
    fn ideal_measurement_respects_separability() {
        let net = fig1_case1();
        let out = toy_sim(MeasurementMode::Ideal, 3);
        // Under ideal monitoring a path is congested iff one of its links is.
        for t in 0..out.observations.num_intervals() {
            for path in net.paths() {
                let any_link_congested = path
                    .links
                    .iter()
                    .any(|&l| out.ground_truth.is_congested(l, t));
                assert_eq!(
                    out.observations.is_congested(path.id, t),
                    any_link_congested
                );
            }
        }
    }

    #[test]
    fn link_frequencies_track_model_marginals() {
        let out = toy_sim(MeasurementMode::Ideal, 11);
        for &l in out.ground_truth.congestible_links() {
            let expected = out.ground_truth.model_marginal(l);
            let observed = out.ground_truth.link_frequency(l);
            assert!(
                (expected - observed).abs() < 0.12,
                "link {l}: model {expected} vs observed {observed}"
            );
        }
        // Non-congestible links are never congested.
        for l in [E1, E2, E3, E4] {
            if !out.ground_truth.congestible_links().contains(&l) {
                assert_eq!(out.ground_truth.link_frequency(l), 0.0);
            }
        }
    }

    #[test]
    fn packet_probing_mostly_agrees_with_ideal_classification() {
        let net = fig1_case1();
        let out = toy_sim(
            MeasurementMode::PacketProbes {
                packets_per_interval: 600,
            },
            5,
        );
        // Probing introduces noise, but with 600 probes per interval the path
        // classification should agree with the Separability rule in the vast
        // majority of intervals.
        let mut agree = 0usize;
        let mut total = 0usize;
        for t in 0..out.observations.num_intervals() {
            for path in net.paths() {
                let ideal = path
                    .links
                    .iter()
                    .any(|&l| out.ground_truth.is_congested(l, t));
                total += 1;
                if ideal == out.observations.is_congested(path.id, t) {
                    agree += 1;
                }
            }
        }
        let agreement = agree as f64 / total as f64;
        assert!(agreement > 0.9, "agreement only {agreement}");
    }

    #[test]
    fn simulation_is_deterministic_given_seed() {
        let a = toy_sim(MeasurementMode::Ideal, 42);
        let b = toy_sim(MeasurementMode::Ideal, 42);
        for t in 0..a.observations.num_intervals() {
            assert_eq!(
                a.observations.congested_paths(t),
                b.observations.congested_paths(t)
            );
            assert_eq!(
                a.ground_truth.congested_links(t),
                b.ground_truth.congested_links(t)
            );
        }
    }

    #[test]
    fn nonstationary_runs_change_probabilities_between_epochs() {
        let net = fig1_case1();
        let mut scenario = ScenarioConfig::no_stationarity();
        scenario.congestible_fraction = 0.5;
        scenario.epoch_len = 50;
        let config = SimulationConfig {
            num_intervals: 500,
            scenario,
            loss: LossModel::default(),
            measurement: MeasurementMode::Ideal,
            seed: 8,
        };
        let out = Simulator::new(config).run(&net);
        // The time-averaged marginal must differ from the first epoch's
        // marginal for at least one congestible link (probabilities were
        // re-drawn).
        let congestible = out.ground_truth.congestible_links().to_vec();
        assert!(!congestible.is_empty());
        let changed = congestible.iter().any(|&l| {
            (out.initial_model.marginal(l) - out.ground_truth.model_marginal(l)).abs() > 1e-6
        });
        assert!(changed);
    }

    #[test]
    fn observations_dimensions_match_network() {
        let out = toy_sim(MeasurementMode::Ideal, 1);
        assert_eq!(out.observations.num_paths(), 3);
        assert_eq!(out.observations.num_intervals(), 400);
        assert_eq!(out.ground_truth.num_links(), 4);
        let _ = (LinkId(0), PathId(0)); // type sanity
    }
}
