//! Per-interval path observations — the only information the tomography
//! algorithms are allowed to see (Assumption 2, E2E Monitoring).

use serde::{Deserialize, Serialize};
use tomo_graph::PathId;

/// The Boolean congestion status `Y_p(t)` of every path over `T` intervals.
///
/// Intervals may optionally carry *weights* (see
/// [`PathObservations::set_weights`]): empirical frequencies are then
/// weighted averages instead of plain fractions, which is how an
/// exponentially decayed observation window reaches the batch estimators —
/// any algorithm that consumes frequencies through
/// [`PathObservations::fraction_all_good`] /
/// [`PathObservations::path_congestion_frequency`] (the Bayesian and
/// heuristic estimators included) becomes drift-aware for free. Unweighted
/// observations behave exactly as before (every interval counts 1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PathObservations {
    num_paths: usize,
    num_intervals: usize,
    /// Row-major: `congested[t * num_paths + p]`.
    congested: Vec<bool>,
    /// Optional per-interval weights (`weights[t]`); `None` means every
    /// interval weighs 1.
    weights: Option<Vec<f64>>,
}

impl PathObservations {
    /// Creates an all-good observation matrix.
    pub fn new(num_paths: usize, num_intervals: usize) -> Self {
        Self {
            num_paths,
            num_intervals,
            congested: vec![false; num_paths * num_intervals],
            weights: None,
        }
    }

    /// Attaches per-interval weights (e.g. `λ^age` from a decayed window).
    ///
    /// # Panics
    /// Panics if `weights.len() != num_intervals` or any weight is
    /// non-finite or non-positive.
    pub fn set_weights(&mut self, weights: Vec<f64>) {
        assert_eq!(
            weights.len(),
            self.num_intervals,
            "one weight per interval required"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "interval weights must be finite and positive"
        );
        self.weights = Some(weights);
    }

    /// The per-interval weights, when attached.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Whether per-interval weights are attached.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// The weight of interval `t` (1 when unweighted).
    pub fn interval_weight(&self, t: usize) -> f64 {
        assert!(t < self.num_intervals, "interval index out of range");
        self.weights.as_ref().map_or(1.0, |w| w[t])
    }

    /// The effective sample size weighted frequencies divide by: `Σ w_t`,
    /// which is exactly `T` when unweighted.
    pub fn total_weight(&self) -> f64 {
        match &self.weights {
            None => self.num_intervals as f64,
            Some(w) => w.iter().sum(),
        }
    }

    /// Number of observed paths.
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }

    /// Number of observation intervals `T`.
    pub fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    /// Marks path `p` as congested during interval `t`.
    pub fn set_congested(&mut self, p: PathId, t: usize, congested: bool) {
        let idx = self.index(p, t);
        self.congested[idx] = congested;
    }

    /// Returns `true` if path `p` was congested during interval `t`
    /// (`Y_p(t) = 1`).
    pub fn is_congested(&self, p: PathId, t: usize) -> bool {
        self.congested[self.index(p, t)]
    }

    /// Returns `true` if path `p` was good during interval `t`
    /// (`Y_p(t) = 0`).
    pub fn is_good(&self, p: PathId, t: usize) -> bool {
        !self.is_congested(p, t)
    }

    fn index(&self, p: PathId, t: usize) -> usize {
        assert!(p.index() < self.num_paths, "path index out of range");
        assert!(t < self.num_intervals, "interval index out of range");
        t * self.num_paths + p.index()
    }

    /// The set of congested paths `P^c(t)` during interval `t`.
    pub fn congested_paths(&self, t: usize) -> Vec<PathId> {
        (0..self.num_paths)
            .map(PathId)
            .filter(|&p| self.is_congested(p, t))
            .collect()
    }

    /// The set of good paths during interval `t`.
    pub fn good_paths(&self, t: usize) -> Vec<PathId> {
        (0..self.num_paths)
            .map(PathId)
            .filter(|&p| self.is_good(p, t))
            .collect()
    }

    /// Returns `true` if *all* the given paths were good during interval `t`.
    pub fn all_good(&self, paths: &[PathId], t: usize) -> bool {
        paths.iter().all(|&p| self.is_good(p, t))
    }

    /// Empirical estimate of `P(∩_{p ∈ paths} Y_p = 0)`: the (weighted)
    /// fraction of intervals during which every path in `paths` was good.
    /// This is the left-hand side of Eq. (1) in the paper.
    pub fn fraction_all_good(&self, paths: &[PathId]) -> f64 {
        if self.num_intervals == 0 {
            return 0.0;
        }
        match &self.weights {
            None => {
                let count = (0..self.num_intervals)
                    .filter(|&t| self.all_good(paths, t))
                    .count();
                count as f64 / self.num_intervals as f64
            }
            Some(w) => {
                let hit: f64 = (0..self.num_intervals)
                    .filter(|&t| self.all_good(paths, t))
                    .map(|t| w[t])
                    .sum();
                hit / self.total_weight()
            }
        }
    }

    /// Empirical (weighted) congestion frequency of a single path.
    pub fn path_congestion_frequency(&self, p: PathId) -> f64 {
        if self.num_intervals == 0 {
            return 0.0;
        }
        match &self.weights {
            None => {
                let count = (0..self.num_intervals)
                    .filter(|&t| self.is_congested(p, t))
                    .count();
                count as f64 / self.num_intervals as f64
            }
            Some(w) => {
                let hit: f64 = (0..self.num_intervals)
                    .filter(|&t| self.is_congested(p, t))
                    .map(|t| w[t])
                    .sum();
                hit / self.total_weight()
            }
        }
    }

    /// Paths that were good during *every* interval. Links traversed only by
    /// such paths are not "potentially congested" (§5.2) and their congestion
    /// probability is 0.
    pub fn always_good_paths(&self) -> Vec<PathId> {
        (0..self.num_paths)
            .map(PathId)
            .filter(|&p| (0..self.num_intervals).all(|t| self.is_good(p, t)))
            .collect()
    }

    /// Paths that were congested during at least one interval.
    pub fn sometimes_congested_paths(&self) -> Vec<PathId> {
        (0..self.num_paths)
            .map(PathId)
            .filter(|&p| (0..self.num_intervals).any(|t| self.is_congested(p, t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PathObservations {
        // 3 paths, 4 intervals.
        let mut o = PathObservations::new(3, 4);
        // p0 congested in t0, t2 ; p1 congested in t0 ; p2 never congested.
        o.set_congested(PathId(0), 0, true);
        o.set_congested(PathId(0), 2, true);
        o.set_congested(PathId(1), 0, true);
        o
    }

    #[test]
    fn basic_queries() {
        let o = sample();
        assert_eq!(o.num_paths(), 3);
        assert_eq!(o.num_intervals(), 4);
        assert!(o.is_congested(PathId(0), 0));
        assert!(o.is_good(PathId(0), 1));
        assert_eq!(o.congested_paths(0), vec![PathId(0), PathId(1)]);
        assert_eq!(o.congested_paths(1), vec![]);
        assert_eq!(o.good_paths(2), vec![PathId(1), PathId(2)]);
    }

    #[test]
    fn empirical_probabilities() {
        let o = sample();
        // p0 good in 2/4 intervals.
        assert!((o.fraction_all_good(&[PathId(0)]) - 0.5).abs() < 1e-12);
        // {p0, p1} both good in t1, t3 -> 0.5
        assert!((o.fraction_all_good(&[PathId(0), PathId(1)]) - 0.5).abs() < 1e-12);
        // Empty path set: vacuously all good in every interval.
        assert!((o.fraction_all_good(&[]) - 1.0).abs() < 1e-12);
        assert!((o.path_congestion_frequency(PathId(1)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn always_good_detection() {
        let o = sample();
        assert_eq!(o.always_good_paths(), vec![PathId(2)]);
        assert_eq!(o.sometimes_congested_paths(), vec![PathId(0), PathId(1)]);
    }

    #[test]
    #[should_panic(expected = "interval index out of range")]
    fn out_of_range_interval_panics() {
        let o = sample();
        let _ = o.is_good(PathId(0), 99);
    }

    #[test]
    fn unweighted_defaults_count_every_interval_once() {
        let o = sample();
        assert!(!o.is_weighted());
        assert_eq!(o.weights(), None);
        assert_eq!(o.interval_weight(0), 1.0);
        assert_eq!(o.total_weight(), 4.0);
    }

    #[test]
    fn weighted_frequencies_are_weighted_averages() {
        let mut o = sample();
        // p0 congested in t0, t2. Weight the recent intervals heavier.
        o.set_weights(vec![1.0, 1.0, 2.0, 4.0]);
        assert!(o.is_weighted());
        assert_eq!(o.total_weight(), 8.0);
        assert!((o.interval_weight(3) - 4.0).abs() < 1e-12);
        // p0 good in t1 (w=1) and t3 (w=4) -> 5/8.
        assert!((o.fraction_all_good(&[PathId(0)]) - 5.0 / 8.0).abs() < 1e-12);
        // p0 congested in t0 (w=1) and t2 (w=2) -> 3/8.
        assert!((o.path_congestion_frequency(PathId(0)) - 3.0 / 8.0).abs() < 1e-12);
        // Uniform weights reproduce the unweighted numbers exactly.
        let mut u = sample();
        u.set_weights(vec![3.0; 4]);
        assert!((u.fraction_all_good(&[PathId(0)]) - 0.5).abs() < 1e-12);
        assert!((u.path_congestion_frequency(PathId(1)) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one weight per interval")]
    fn weight_length_mismatch_panics() {
        let mut o = sample();
        o.set_weights(vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_weights_panic() {
        let mut o = sample();
        o.set_weights(vec![1.0, 0.0, 1.0, 1.0]);
    }
}
