//! The congestion process: drivers, marginals and physically-induced
//! correlations.
//!
//! The paper induces link correlations through the router-level view: "if a
//! router-level link becomes congested, then all the AS-level links that
//! share this router-level link become congested at the same time" (§3.2).
//!
//! We model this with *drivers*. A driver is an independent Bernoulli source
//! of congestion with a probability drawn uniformly from (0, 1):
//!
//! * a **shared driver** corresponds to a congested router-level link and has
//!   several member AS-level links — when it fires, *all* of them become
//!   congested simultaneously (perfectly correlated members);
//! * a **private driver** has a single member link (independent congestion).
//!
//! Every *congestible* link belongs to exactly one driver, which keeps both
//! the marginal probability `P(X_e = 1)` and the joint probability of any
//! set of links in closed form (products over the drivers touching the set).
//! Links that are not congestible are always good.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

use tomo_graph::{LinkId, Network};

/// An independent source of congestion.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Driver {
    /// Probability that this driver fires in a given interval.
    pub probability: f64,
    /// The links that become congested when the driver fires.
    pub members: Vec<LinkId>,
}

/// The complete congestion process for one experiment (or one epoch of a
/// non-stationary experiment).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CongestionModel {
    /// The independent drivers.
    pub drivers: Vec<Driver>,
    /// `driver_of[l]` = index of the driver containing link `l`, if the link
    /// is congestible.
    driver_of: HashMap<LinkId, usize>,
}

impl CongestionModel {
    /// Builds a model from a list of drivers.
    ///
    /// # Panics
    /// Panics if a link appears in more than one driver.
    pub fn new(drivers: Vec<Driver>) -> Self {
        let mut driver_of = HashMap::new();
        for (i, d) in drivers.iter().enumerate() {
            assert!(
                d.probability >= 0.0 && d.probability <= 1.0,
                "driver probability out of range"
            );
            for &l in &d.members {
                let prev = driver_of.insert(l, i);
                assert!(prev.is_none(), "link {l} belongs to two drivers");
            }
        }
        Self { drivers, driver_of }
    }

    /// The congestible links (members of any driver).
    pub fn congestible_links(&self) -> Vec<LinkId> {
        let mut v: Vec<LinkId> = self.driver_of.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Returns `true` if the link can ever be congested under this model.
    pub fn is_congestible(&self, link: LinkId) -> bool {
        self.driver_of.contains_key(&link)
    }

    /// The exact marginal congestion probability `P(X_e = 1)` of a link.
    pub fn marginal(&self, link: LinkId) -> f64 {
        match self.driver_of.get(&link) {
            Some(&d) => self.drivers[d].probability,
            None => 0.0,
        }
    }

    /// The exact joint congestion probability `P(∩_{e∈S} X_e = 1)` of a set
    /// of links: the product of the probabilities of the distinct drivers
    /// covering the set, or 0 if any member is not congestible.
    pub fn joint_congestion(&self, links: &[LinkId]) -> f64 {
        let mut drivers = BTreeSet::new();
        for l in links {
            match self.driver_of.get(l) {
                Some(&d) => {
                    drivers.insert(d);
                }
                None => return 0.0,
            }
        }
        drivers
            .iter()
            .map(|&d| self.drivers[d].probability)
            .product()
    }

    /// The exact probability that *all* links of a set are good,
    /// `P(∩_{e∈S} X_e = 0)`: the product of `(1 − p_d)` over the distinct
    /// drivers covering the congestible members of the set.
    pub fn joint_good(&self, links: &[LinkId]) -> f64 {
        let mut drivers = BTreeSet::new();
        for l in links {
            if let Some(&d) = self.driver_of.get(l) {
                drivers.insert(d);
            }
        }
        drivers
            .iter()
            .map(|&d| 1.0 - self.drivers[d].probability)
            .product()
    }

    /// Samples the set of congested links for one interval.
    pub fn sample_interval(&self, rng: &mut StdRng, num_links: usize) -> Vec<bool> {
        let mut congested = vec![false; num_links];
        for d in &self.drivers {
            if rng.gen_bool(d.probability.clamp(0.0, 1.0)) {
                for &l in &d.members {
                    congested[l.index()] = true;
                }
            }
        }
        congested
    }

    /// Returns `true` when two links are perfectly correlated under this
    /// model (same driver).
    pub fn correlated(&self, a: LinkId, b: LinkId) -> bool {
        match (self.driver_of.get(&a), self.driver_of.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

/// Groups of AS-level links that share an underlying router-level link, i.e.
/// the candidate correlation groups of a network. Only groups with at least
/// two members are returned (a singleton group induces no correlation).
pub fn shared_router_groups(network: &Network) -> Vec<Vec<LinkId>> {
    let mut by_router: HashMap<usize, Vec<LinkId>> = HashMap::new();
    for link in network.links() {
        for r in &link.router_links {
            by_router.entry(r.index()).or_default().push(link.id);
        }
    }
    let mut groups: Vec<Vec<LinkId>> = by_router
        .into_values()
        .filter(|g| g.len() >= 2)
        .map(|mut g| {
            g.sort_unstable();
            g.dedup();
            g
        })
        .filter(|g| g.len() >= 2)
        .collect();
    groups.sort();
    groups.dedup();
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tomo_graph::toy::{fig1_case1, E1, E2, E3};

    fn model() -> CongestionModel {
        CongestionModel::new(vec![
            Driver {
                probability: 0.3,
                members: vec![E1],
            },
            Driver {
                probability: 0.5,
                members: vec![E2, E3],
            },
        ])
    }

    #[test]
    fn marginals_and_joints() {
        let m = model();
        assert!((m.marginal(E1) - 0.3).abs() < 1e-12);
        assert!((m.marginal(E2) - 0.5).abs() < 1e-12);
        assert_eq!(m.marginal(LinkId(3)), 0.0);
        // e2 and e3 share a driver: perfectly correlated.
        assert!((m.joint_congestion(&[E2, E3]) - 0.5).abs() < 1e-12);
        // e1 and e2 are independent: product of marginals.
        assert!((m.joint_congestion(&[E1, E2]) - 0.15).abs() < 1e-12);
        // A set containing a non-congestible link has probability 0.
        assert_eq!(m.joint_congestion(&[E1, LinkId(3)]), 0.0);
        // Joint good probabilities.
        assert!((m.joint_good(&[E2, E3]) - 0.5).abs() < 1e-12);
        assert!((m.joint_good(&[E1, E2]) - 0.35).abs() < 1e-12);
        assert!((m.joint_good(&[LinkId(3)]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_query() {
        let m = model();
        assert!(m.correlated(E2, E3));
        assert!(!m.correlated(E1, E2));
        assert!(!m.correlated(E1, LinkId(3)));
    }

    #[test]
    #[should_panic(expected = "two drivers")]
    fn rejects_overlapping_drivers() {
        let _ = CongestionModel::new(vec![
            Driver {
                probability: 0.1,
                members: vec![E1],
            },
            Driver {
                probability: 0.2,
                members: vec![E1, E2],
            },
        ]);
    }

    #[test]
    fn sampling_respects_marginals_and_correlation() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 20_000;
        let mut count_e1 = 0;
        let mut count_e2 = 0;
        let mut count_e2_and_e3 = 0;
        let mut count_e2_xor_e3 = 0;
        for _ in 0..trials {
            let s = m.sample_interval(&mut rng, 4);
            if s[E1.index()] {
                count_e1 += 1;
            }
            if s[E2.index()] {
                count_e2 += 1;
            }
            if s[E2.index()] && s[E3.index()] {
                count_e2_and_e3 += 1;
            }
            if s[E2.index()] != s[E3.index()] {
                count_e2_xor_e3 += 1;
            }
        }
        let f_e1 = count_e1 as f64 / trials as f64;
        let f_e2 = count_e2 as f64 / trials as f64;
        let f_joint = count_e2_and_e3 as f64 / trials as f64;
        assert!((f_e1 - 0.3).abs() < 0.02, "f_e1 = {f_e1}");
        assert!((f_e2 - 0.5).abs() < 0.02, "f_e2 = {f_e2}");
        assert!((f_joint - 0.5).abs() < 0.02, "f_joint = {f_joint}");
        // Perfect correlation: e2 and e3 never differ.
        assert_eq!(count_e2_xor_e3, 0);
    }

    #[test]
    fn shared_router_groups_from_generated_topology() {
        // The toy fixture has no router annotations: no groups.
        assert!(shared_router_groups(&fig1_case1()).is_empty());
    }
}
