//! Adversarial probability dynamics: the chaos evolutions.
//!
//! The paper's evolutions ([`crate::scenario::redraw_probabilities`], drift,
//! churn) model benign non-stationarity. The evolutions here model the
//! faults a production tomography monitor is actually judged on: bursty
//! loss (Gilbert–Elliott), correlated failure cascades (shared-risk link
//! groups), flapping links and diurnal load swings. Each step emits a
//! [`FaultEvent`] per regime change so the reaction-scoring layer can
//! measure detection latency and time-to-reconverge per injected fault.
//!
//! The evolution API is stateless between epochs — a step sees only the
//! previous epoch's [`CongestionModel`] — so per-driver regime state is
//! encoded in the driver probability itself: a Gilbert–Elliott driver is in
//! the bad state iff its probability equals `bad_loss`, an SRLG/flapping
//! driver is down iff its probability equals the configured `down_loss`.
//! [`initialize_model`] normalizes a freshly built scenario model into that
//! encoding (baseline probabilities are remapped into a range that cannot
//! collide with the down/bad levels). All randomness comes from the caller's
//! seeded RNG, so chaos sweeps stay byte-identical across thread counts.

use rand::rngs::StdRng;
use rand::Rng;

use tomo_chaos::{FaultEvent, FaultKind};

use crate::correlation_model::{CongestionModel, Driver};
use crate::scenario::ProbabilityEvolution;

/// Tolerance for recognizing a driver's encoded regime state.
const STATE_EPS: f64 = 1e-9;

/// Baseline (healthy) probabilities live in this range so they can never be
/// mistaken for a down/bad level (which the chaos scenarios keep ≥ 0.8).
const BASELINE_LO: f64 = 0.05;
const BASELINE_HI: f64 = 0.50;

fn remap_baseline(p: f64) -> f64 {
    // Deterministically squeeze a (0.01, 1.0) scenario draw into the
    // baseline range, preserving ordering.
    BASELINE_LO + ((p - 0.01) / 0.99).clamp(0.0, 1.0) * (BASELINE_HI - BASELINE_LO)
}

fn member_indices(d: &Driver) -> Vec<usize> {
    let mut links: Vec<usize> = d.members.iter().map(|l| l.index()).collect();
    links.sort_unstable();
    links
}

fn in_state(p: f64, level: f64) -> bool {
    (p - level).abs() < STATE_EPS
}

/// Normalizes a freshly built scenario model into the regime encoding the
/// chaos evolutions expect. Non-chaos evolutions pass through unchanged.
pub fn initialize_model(
    model: CongestionModel,
    evolution: Option<ProbabilityEvolution>,
    rng: &mut StdRng,
) -> CongestionModel {
    match evolution {
        Some(ProbabilityEvolution::GilbertElliott {
            p_gb,
            p_bg,
            good_loss,
            bad_loss,
        }) => {
            // Start each driver in the chain's stationary distribution so
            // empirical loss converges to the stationary mixture from the
            // first interval.
            let pi_bad = if p_gb + p_bg > 0.0 {
                p_gb / (p_gb + p_bg)
            } else {
                0.0
            };
            let drivers = model
                .drivers
                .iter()
                .map(|d| Driver {
                    probability: if pi_bad > 0.0 && rng.gen_bool(pi_bad.clamp(0.0, 1.0)) {
                        bad_loss
                    } else {
                        good_loss
                    },
                    members: d.members.clone(),
                })
                .collect();
            CongestionModel::new(drivers)
        }
        Some(ProbabilityEvolution::SrlgCascade { .. })
        | Some(ProbabilityEvolution::Diurnal { .. }) => {
            let drivers = model
                .drivers
                .iter()
                .map(|d| Driver {
                    probability: remap_baseline(d.probability),
                    members: d.members.clone(),
                })
                .collect();
            CongestionModel::new(drivers)
        }
        Some(ProbabilityEvolution::Flapping {
            period,
            duty,
            down_loss,
        }) => {
            let n = model.drivers.len();
            let drivers = model
                .drivers
                .iter()
                .enumerate()
                .map(|(i, d)| Driver {
                    probability: if flap_is_down(0, i, n, period, duty) {
                        down_loss
                    } else {
                        remap_baseline(d.probability)
                    },
                    members: d.members.clone(),
                })
                .collect();
            CongestionModel::new(drivers)
        }
        _ => model,
    }
}

/// One Gilbert–Elliott step: every driver is an independent two-state
/// Markov chain over {good, bad} with transition probabilities `p_gb`
/// (good → bad) and `p_bg` (bad → good); the states pin the driver
/// probability to `good_loss` / `bad_loss`. Emits [`FaultKind::BurstStart`]
/// / [`FaultKind::BurstEnd`] per transition.
#[allow(clippy::too_many_arguments)]
pub fn gilbert_elliott_step(
    model: &CongestionModel,
    p_gb: f64,
    p_bg: f64,
    good_loss: f64,
    bad_loss: f64,
    epoch: usize,
    interval: usize,
    rng: &mut StdRng,
) -> (CongestionModel, Vec<FaultEvent>) {
    let mut events = Vec::new();
    let drivers = model
        .drivers
        .iter()
        .map(|d| {
            let was_bad = in_state(d.probability, bad_loss);
            let flips = if was_bad {
                rng.gen_bool(p_bg.clamp(0.0, 1.0))
            } else {
                rng.gen_bool(p_gb.clamp(0.0, 1.0))
            };
            let now_bad = was_bad != flips;
            if now_bad != was_bad {
                let kind = if now_bad {
                    FaultKind::BurstStart
                } else {
                    FaultKind::BurstEnd
                };
                events.push(FaultEvent::model(kind, interval, epoch, member_indices(d)));
            }
            Driver {
                probability: if now_bad { bad_loss } else { good_loss },
                members: d.members.clone(),
            }
        })
        .collect();
    (CongestionModel::new(drivers), events)
}

/// One shared-risk-group cascade step: every driver (one shared-risk group)
/// independently fails with probability `p_fail` — all member links jump to
/// `down_loss` together — and recovers with probability `p_recover` to a
/// fresh baseline operating point drawn from the RNG. Emits
/// [`FaultKind::GroupFail`] / [`FaultKind::GroupRecover`].
pub fn srlg_step(
    model: &CongestionModel,
    p_fail: f64,
    p_recover: f64,
    down_loss: f64,
    epoch: usize,
    interval: usize,
    rng: &mut StdRng,
) -> (CongestionModel, Vec<FaultEvent>) {
    let mut events = Vec::new();
    let drivers = model
        .drivers
        .iter()
        .map(|d| {
            let was_down = in_state(d.probability, down_loss);
            let probability = if was_down {
                if rng.gen_bool(p_recover.clamp(0.0, 1.0)) {
                    events.push(FaultEvent::model(
                        FaultKind::GroupRecover,
                        interval,
                        epoch,
                        member_indices(d),
                    ));
                    rng.gen_range(BASELINE_LO..BASELINE_HI)
                } else {
                    down_loss
                }
            } else if rng.gen_bool(p_fail.clamp(0.0, 1.0)) {
                events.push(FaultEvent::model(
                    FaultKind::GroupFail,
                    interval,
                    epoch,
                    member_indices(d),
                ));
                down_loss
            } else {
                d.probability
            };
            Driver {
                probability,
                members: d.members.clone(),
            }
        })
        .collect();
    (CongestionModel::new(drivers), events)
}

/// Whether flapping driver `i` (of `n`) is down at `epoch`. The schedule is
/// a pure function of the epoch: each driver is up for `duty` of every
/// `period` epochs, with per-driver phase offsets so the fleet flaps
/// staggered rather than in lockstep.
pub fn flap_is_down(epoch: usize, i: usize, n: usize, period: usize, duty: f64) -> bool {
    let period = period.max(2);
    let up_epochs = ((duty * period as f64).round() as usize).clamp(1, period - 1);
    let offset = (i * period) / n.max(1);
    (epoch + offset) % period >= up_epochs
}

/// One flapping step: the deterministic duty-cycle schedule decides which
/// drivers are down this epoch; transitions emit [`FaultKind::FlapDown`] /
/// [`FaultKind::FlapUp`]. A driver coming back up recovers to a fresh
/// baseline operating point.
#[allow(clippy::too_many_arguments)]
pub fn flapping_step(
    model: &CongestionModel,
    period: usize,
    duty: f64,
    down_loss: f64,
    epoch: usize,
    interval: usize,
    rng: &mut StdRng,
) -> (CongestionModel, Vec<FaultEvent>) {
    let n = model.drivers.len();
    let mut events = Vec::new();
    let drivers = model
        .drivers
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let was_down = in_state(d.probability, down_loss);
            let now_down = flap_is_down(epoch, i, n, period, duty);
            let probability = match (was_down, now_down) {
                (false, true) => {
                    events.push(FaultEvent::model(
                        FaultKind::FlapDown,
                        interval,
                        epoch,
                        member_indices(d),
                    ));
                    down_loss
                }
                (true, false) => {
                    events.push(FaultEvent::model(
                        FaultKind::FlapUp,
                        interval,
                        epoch,
                        member_indices(d),
                    ));
                    rng.gen_range(BASELINE_LO..BASELINE_HI)
                }
                _ => d.probability,
            };
            Driver {
                probability,
                members: d.members.clone(),
            }
        })
        .collect();
    (CongestionModel::new(drivers), events)
}

/// The diurnal scale factor at `epoch`: `1 + amplitude · sin(2π·epoch/period)`.
pub fn diurnal_scale(epoch: usize, period: usize, amplitude: f64) -> f64 {
    let period = period.max(2) as f64;
    1.0 + amplitude * (2.0 * std::f64::consts::PI * epoch as f64 / period).sin()
}

/// One diurnal step: every driver probability is rescaled by the ratio of
/// this epoch's load factor to the previous one's, so the absolute level
/// follows `baseline · (1 + amplitude·sin(...))` without compounding.
/// Emits [`FaultKind::LoadSwing`] when the curve crosses its peak or
/// trough — the two per-cycle moments the regime reverses direction.
pub fn diurnal_step(
    model: &CongestionModel,
    period: usize,
    amplitude: f64,
    epoch: usize,
    interval: usize,
) -> (CongestionModel, Vec<FaultEvent>) {
    let period = period.max(2);
    let prev = diurnal_scale(epoch.saturating_sub(1), period, amplitude);
    let now = diurnal_scale(epoch, period, amplitude);
    let factor = if prev.abs() > 1e-12 { now / prev } else { 1.0 };
    let drivers: Vec<Driver> = model
        .drivers
        .iter()
        .map(|d| Driver {
            probability: (d.probability * factor).clamp(0.002, 0.98),
            members: d.members.clone(),
        })
        .collect();
    let mut events = Vec::new();
    let phase = epoch % period;
    if phase == period / 4 || phase == (3 * period) / 4 {
        let mut links: Vec<usize> = drivers.iter().flat_map(member_indices).collect();
        links.sort_unstable();
        links.dedup();
        events.push(FaultEvent::model(
            FaultKind::LoadSwing,
            interval,
            epoch,
            links,
        ));
    }
    (CongestionModel::new(drivers), events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tomo_graph::LinkId;

    fn model(probs: &[f64]) -> CongestionModel {
        CongestionModel::new(
            probs
                .iter()
                .enumerate()
                .map(|(i, &p)| Driver {
                    probability: p,
                    members: vec![LinkId(i)],
                })
                .collect(),
        )
    }

    #[test]
    fn gilbert_elliott_pins_probabilities_to_the_two_levels() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = initialize_model(
            model(&[0.3, 0.7, 0.9]),
            Some(ProbabilityEvolution::GilbertElliott {
                p_gb: 0.2,
                p_bg: 0.4,
                good_loss: 0.05,
                bad_loss: 0.85,
            }),
            &mut rng,
        );
        let mut cur = m;
        for epoch in 1..50 {
            let (next, events) =
                gilbert_elliott_step(&cur, 0.2, 0.4, 0.05, 0.85, epoch, epoch * 5, &mut rng);
            for d in &next.drivers {
                assert!(
                    in_state(d.probability, 0.05) || in_state(d.probability, 0.85),
                    "probability {} off the GE levels",
                    d.probability
                );
            }
            for e in &events {
                assert!(matches!(
                    e.kind,
                    FaultKind::BurstStart | FaultKind::BurstEnd
                ));
                assert_eq!(e.epoch, epoch);
                assert_eq!(e.interval, epoch * 5);
            }
            cur = next;
        }
    }

    #[test]
    fn srlg_fails_and_recovers_whole_groups() {
        let mut rng = StdRng::seed_from_u64(2);
        let group = CongestionModel::new(vec![Driver {
            probability: 0.2,
            members: vec![LinkId(0), LinkId(3), LinkId(5)],
        }]);
        // Force a failure (p_fail = 1) and then a recovery (p_recover = 1).
        let (down, events) = srlg_step(&group, 1.0, 1.0, 0.95, 1, 20, &mut rng);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, FaultKind::GroupFail);
        assert_eq!(events[0].links, vec![0, 3, 5]);
        assert!(in_state(down.drivers[0].probability, 0.95));
        let (up, events) = srlg_step(&down, 1.0, 1.0, 0.95, 2, 40, &mut rng);
        assert_eq!(events[0].kind, FaultKind::GroupRecover);
        let p = up.drivers[0].probability;
        assert!((BASELINE_LO..BASELINE_HI).contains(&p), "recovered to {p}");
    }

    #[test]
    fn flapping_schedule_is_periodic_and_respects_duty() {
        // One driver, period 8, duty 0.75 -> up 6 epochs, down 2.
        let downs: Vec<bool> = (0..16).map(|e| flap_is_down(e, 0, 1, 8, 0.75)).collect();
        assert_eq!(&downs[..8], &downs[8..]);
        assert_eq!(downs[..8].iter().filter(|&&d| d).count(), 2);
        // Steps emit FlapDown/FlapUp exactly at the schedule transitions.
        let mut rng = StdRng::seed_from_u64(3);
        let mut cur = initialize_model(
            model(&[0.4]),
            Some(ProbabilityEvolution::Flapping {
                period: 8,
                duty: 0.75,
                down_loss: 0.9,
            }),
            &mut rng,
        );
        let mut down_events = 0;
        let mut up_events = 0;
        for epoch in 1..=16 {
            let (next, events) = flapping_step(&cur, 8, 0.75, 0.9, epoch, epoch * 3, &mut rng);
            for e in &events {
                match e.kind {
                    FaultKind::FlapDown => down_events += 1,
                    FaultKind::FlapUp => up_events += 1,
                    other => panic!("unexpected {other:?}"),
                }
            }
            cur = next;
        }
        assert_eq!(down_events, 2);
        assert_eq!(up_events, 2);
    }

    #[test]
    fn diurnal_tracks_the_load_curve_without_compounding() {
        let base = 0.2;
        let mut cur = model(&[base]);
        for epoch in 1..=24 {
            let (next, _) = diurnal_step(&cur, 12, 0.6, epoch, epoch);
            cur = next;
            let expected = base * diurnal_scale(epoch, 12, 0.6);
            assert!(
                (cur.drivers[0].probability - expected).abs() < 1e-9,
                "epoch {epoch}: {} vs {expected}",
                cur.drivers[0].probability
            );
        }
        // Exactly two LoadSwing markers per cycle: peak and trough.
        let mut swings = 0;
        let mut m = model(&[base]);
        for epoch in 1..=12 {
            let (next, events) = diurnal_step(&m, 12, 0.6, epoch, epoch);
            swings += events
                .iter()
                .filter(|e| e.kind == FaultKind::LoadSwing)
                .count();
            m = next;
        }
        assert_eq!(swings, 2);
    }

    #[test]
    fn initialization_keeps_baselines_clear_of_down_levels() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = initialize_model(
            model(&[0.011, 0.5, 0.989]),
            Some(ProbabilityEvolution::SrlgCascade {
                p_fail: 0.1,
                p_recover: 0.5,
                down_loss: 0.95,
            }),
            &mut rng,
        );
        for d in &m.drivers {
            assert!((BASELINE_LO..=BASELINE_HI).contains(&d.probability));
        }
    }
}
