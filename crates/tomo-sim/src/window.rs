//! Rolling per-path observation windows for streaming ingestion.
//!
//! The batch estimators consume a fixed [`PathObservations`] matrix. A
//! long-running daemon instead receives intervals one (or a few) at a time
//! and must bound its memory: [`ObservationWindow`] is the ring buffer in
//! between — intervals are pushed as they arrive, the oldest interval is
//! evicted once the configured capacity is reached, and the current contents
//! can be materialized back into a [`PathObservations`] whenever a batch
//! (re)fit is needed.

use std::collections::VecDeque;

use tomo_graph::PathId;

use crate::observation::PathObservations;

/// A bounded (or unbounded) sliding window of per-interval path observations.
///
/// Beyond plain truncation, the window can carry an exponential *decay*
/// factor `λ ∈ (0, 1)`: retained intervals are then weighted `λ^age`
/// (newest = 1), so estimators consuming the window through its weight
/// helpers ([`ObservationWindow::interval_weight`],
/// [`ObservationWindow::total_weight`]) forget old intervals gradually
/// instead of all at once at eviction. The window itself always stores raw
/// flags; decay only changes how its contents are meant to be weighted.
#[derive(Clone, Debug)]
pub struct ObservationWindow {
    num_paths: usize,
    capacity: Option<usize>,
    decay: Option<f64>,
    /// One entry per retained interval: the congestion flag of every path.
    intervals: VecDeque<Vec<bool>>,
    total_ingested: u64,
}

impl ObservationWindow {
    /// An unbounded window over `num_paths` paths.
    pub fn new(num_paths: usize) -> Self {
        Self {
            num_paths,
            capacity: None,
            decay: None,
            intervals: VecDeque::new(),
            total_ingested: 0,
        }
    }

    /// A window that retains at most `capacity` intervals (`None` keeps
    /// everything). A capacity of `Some(0)` is clamped to `Some(1)`.
    pub fn with_capacity(num_paths: usize, capacity: Option<usize>) -> Self {
        Self {
            capacity: capacity.map(|c| c.max(1)),
            ..Self::new(num_paths)
        }
    }

    /// A window with an exponential reweighting factor on top of (optional)
    /// truncation. `decay` must lie in `(0, 1)`; `None` weights every
    /// retained interval equally.
    pub fn with_decay(num_paths: usize, capacity: Option<usize>, decay: Option<f64>) -> Self {
        if let Some(lambda) = decay {
            assert!(
                lambda > 0.0 && lambda < 1.0,
                "decay must lie in (0, 1), got {lambda}"
            );
        }
        Self {
            decay,
            ..Self::with_capacity(num_paths, capacity)
        }
    }

    /// The exponential decay factor, if reweighting is enabled.
    pub fn decay(&self) -> Option<f64> {
        self.decay
    }

    /// The decay factor as a multiplier (1 when reweighting is disabled).
    pub fn lambda(&self) -> f64 {
        self.decay.unwrap_or(1.0)
    }

    /// The weight of the `i`-th retained interval (oldest first): `λ^age`
    /// with the newest interval at weight 1. Out-of-range indices (and the
    /// empty window) report weight 1, matching age 0.
    pub fn interval_weight(&self, i: usize) -> f64 {
        let age = self.intervals.len().saturating_sub(i + 1) as i32;
        self.lambda().powi(age)
    }

    /// Total weight of the retained intervals: `Σ λ^age`, which is exactly
    /// [`ObservationWindow::len`] when decay is disabled. This is the
    /// effective sample size weighted estimators divide by.
    pub fn total_weight(&self) -> f64 {
        let n = self.intervals.len();
        match self.decay {
            None => n as f64,
            Some(lambda) => (1.0 - lambda.powi(n as i32)) / (1.0 - lambda),
        }
    }

    /// Number of observed paths.
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }

    /// The retention capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of intervals currently retained.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Returns `true` when no intervals are retained.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total number of intervals ever pushed (including evicted ones).
    pub fn total_ingested(&self) -> u64 {
        self.total_ingested
    }

    /// Number of intervals evicted so far.
    pub fn evicted(&self) -> u64 {
        self.total_ingested - self.intervals.len() as u64
    }

    /// Restores the lifetime ingest counter after a snapshot restore (the
    /// retained intervals are re-pushed, which would otherwise reset it).
    /// Clamped up to the retained count so `evicted` stays consistent.
    pub fn restore_total_ingested(&mut self, total: u64) {
        self.total_ingested = total.max(self.intervals.len() as u64);
    }

    /// The congestion flags of the `i`-th retained interval (oldest first).
    pub fn interval(&self, i: usize) -> &[bool] {
        &self.intervals[i]
    }

    /// Pushes one interval given the set of congested paths; all other paths
    /// are recorded good. Out-of-range path indices are rejected. Returns the
    /// evicted interval's flags when the push overflowed the capacity.
    pub fn push_congested(&mut self, congested: &[PathId]) -> Result<Option<Vec<bool>>, String> {
        let mut flags = vec![false; self.num_paths];
        for p in congested {
            let slot = flags.get_mut(p.index()).ok_or_else(|| {
                format!(
                    "path index {} out of range (paths: {})",
                    p.index(),
                    self.num_paths
                )
            })?;
            *slot = true;
        }
        Ok(self.push_flags(flags))
    }

    /// Pushes one interval as a full flag vector (`flags.len()` must equal
    /// [`ObservationWindow::num_paths`]). Returns the evicted interval, if
    /// the window was at capacity.
    pub fn push_flags(&mut self, flags: Vec<bool>) -> Option<Vec<bool>> {
        assert_eq!(flags.len(), self.num_paths, "flag vector length mismatch");
        self.total_ingested += 1;
        self.intervals.push_back(flags);
        match self.capacity {
            Some(cap) if self.intervals.len() > cap => self.intervals.pop_front(),
            _ => None,
        }
    }

    /// Materializes the retained intervals into a [`PathObservations`] matrix
    /// (interval 0 = oldest retained). Under decay the matrix carries the
    /// `λ^age` interval weights, so batch estimators re-fit from it see the
    /// same reweighted history the incremental estimators maintain.
    pub fn to_observations(&self) -> PathObservations {
        let mut obs = PathObservations::new(self.num_paths, self.intervals.len());
        for (t, flags) in self.intervals.iter().enumerate() {
            for (p, &congested) in flags.iter().enumerate() {
                if congested {
                    obs.set_congested(PathId(p), t, congested);
                }
            }
        }
        if self.decay.is_some() && !self.intervals.is_empty() {
            obs.set_weights(
                (0..self.intervals.len())
                    .map(|i| self.interval_weight(i))
                    .collect(),
            );
        }
        obs
    }

    /// The retained intervals as sparse congested-path index lists (oldest
    /// first) — the compact form used by daemon snapshots.
    pub fn to_congested_sets(&self) -> Vec<Vec<usize>> {
        self.intervals
            .iter()
            .map(|flags| {
                flags
                    .iter()
                    .enumerate()
                    .filter_map(|(p, &c)| c.then_some(p))
                    .collect()
            })
            .collect()
    }

    /// Rebuilds a window from the sparse snapshot form produced by
    /// [`ObservationWindow::to_congested_sets`]. `total_ingested` restores
    /// the lifetime counter (clamped up to the retained count).
    pub fn from_congested_sets(
        num_paths: usize,
        capacity: Option<usize>,
        sets: &[Vec<usize>],
        total_ingested: u64,
    ) -> Result<Self, String> {
        let mut window = Self::with_capacity(num_paths, capacity);
        for set in sets {
            let ids: Vec<PathId> = set.iter().map(|&p| PathId(p)).collect();
            window.push_congested(&ids)?;
        }
        window.total_ingested = total_ingested.max(window.intervals.len() as u64);
        Ok(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_window_retains_everything() {
        let mut w = ObservationWindow::new(3);
        for t in 0..10 {
            let evicted = w.push_congested(&[PathId(t % 3)]).unwrap();
            assert!(evicted.is_none());
        }
        assert_eq!(w.len(), 10);
        assert_eq!(w.total_ingested(), 10);
        assert_eq!(w.evicted(), 0);
        let obs = w.to_observations();
        assert_eq!(obs.num_intervals(), 10);
        assert!(obs.is_congested(PathId(0), 0));
        assert!(obs.is_good(PathId(1), 0));
    }

    #[test]
    fn bounded_window_evicts_oldest() {
        let mut w = ObservationWindow::with_capacity(2, Some(3));
        assert!(w.push_congested(&[PathId(0)]).unwrap().is_none());
        assert!(w.push_congested(&[PathId(1)]).unwrap().is_none());
        assert!(w.push_congested(&[]).unwrap().is_none());
        let evicted = w.push_congested(&[PathId(0), PathId(1)]).unwrap();
        assert_eq!(evicted, Some(vec![true, false]));
        assert_eq!(w.len(), 3);
        assert_eq!(w.total_ingested(), 4);
        assert_eq!(w.evicted(), 1);
        // Oldest retained interval is now the second push.
        assert_eq!(w.interval(0), &[false, true]);
    }

    #[test]
    fn out_of_range_paths_are_rejected() {
        let mut w = ObservationWindow::new(2);
        assert!(w.push_congested(&[PathId(2)]).is_err());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn snapshot_form_round_trips() {
        let mut w = ObservationWindow::with_capacity(4, Some(8));
        for t in 0..12 {
            w.push_congested(&[PathId(t % 4), PathId((t + 1) % 4)])
                .unwrap();
        }
        let sets = w.to_congested_sets();
        let back =
            ObservationWindow::from_congested_sets(4, Some(8), &sets, w.total_ingested()).unwrap();
        assert_eq!(back.len(), w.len());
        assert_eq!(back.total_ingested(), w.total_ingested());
        for i in 0..w.len() {
            assert_eq!(back.interval(i), w.interval(i));
        }
    }

    #[test]
    fn decayed_weights_follow_age() {
        let mut w = ObservationWindow::with_decay(1, Some(4), Some(0.5));
        assert_eq!(w.decay(), Some(0.5));
        for _ in 0..3 {
            w.push_congested(&[]).unwrap();
        }
        // Ages 2, 1, 0 -> weights 0.25, 0.5, 1.
        assert!((w.interval_weight(0) - 0.25).abs() < 1e-12);
        assert!((w.interval_weight(1) - 0.5).abs() < 1e-12);
        assert!((w.interval_weight(2) - 1.0).abs() < 1e-12);
        assert!((w.total_weight() - 1.75).abs() < 1e-12);
        // Empty windows and out-of-range indices are age 0 (weight 1), not
        // an underflow.
        let empty = ObservationWindow::with_decay(1, None, Some(0.5));
        assert_eq!(empty.interval_weight(0), 1.0);
        assert_eq!(w.interval_weight(99), 1.0);
        // Without decay the helpers degrade to plain counting.
        let mut plain = ObservationWindow::with_capacity(1, Some(4));
        plain.push_congested(&[]).unwrap();
        plain.push_congested(&[]).unwrap();
        assert_eq!(plain.lambda(), 1.0);
        assert_eq!(plain.interval_weight(0), 1.0);
        assert_eq!(plain.total_weight(), 2.0);
    }

    #[test]
    #[should_panic(expected = "decay must lie in (0, 1)")]
    fn decay_outside_unit_interval_is_rejected() {
        let _ = ObservationWindow::with_decay(1, None, Some(1.5));
    }

    #[test]
    fn decayed_window_materializes_weighted_observations() {
        let mut w = ObservationWindow::with_decay(2, None, Some(0.5));
        w.push_congested(&[PathId(0)]).unwrap();
        w.push_congested(&[]).unwrap();
        w.push_congested(&[PathId(0)]).unwrap();
        let obs = w.to_observations();
        assert!(obs.is_weighted());
        assert_eq!(obs.weights(), Some(&[0.25, 0.5, 1.0][..]));
        assert!((obs.total_weight() - w.total_weight()).abs() < 1e-12);
        // p0 congested in the oldest and newest interval -> (0.25 + 1)/1.75.
        let freq = obs.path_congestion_frequency(PathId(0));
        assert!((freq - 1.25 / 1.75).abs() < 1e-12);
        // Without decay the matrix stays unweighted.
        let mut plain = ObservationWindow::new(2);
        plain.push_congested(&[PathId(0)]).unwrap();
        assert!(!plain.to_observations().is_weighted());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut w = ObservationWindow::with_capacity(1, Some(0));
        w.push_congested(&[]).unwrap();
        w.push_congested(&[PathId(0)]).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w.interval(0), &[true]);
    }
}
