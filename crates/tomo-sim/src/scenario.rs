//! Congestion scenarios (§3.2 and §5.4 of the paper).
//!
//! All scenarios share the same skeleton: 10 % of the links are *congestible*
//! (non-zero congestion probability drawn uniformly from (0, 1)); the
//! scenarios differ in **which** links are congestible, whether they are
//! mutually **correlated**, and whether the probabilities are **stationary**:
//!
//! * **Random Congestion** — congestible links chosen uniformly at random.
//! * **Concentrated Congestion** — congestible links located toward the edge
//!   of the network (no congestion at the core), the worst case for the
//!   Sparsity algorithm.
//! * **No Independence** — congestible links chosen so that each is
//!   correlated with at least one other (they share a router-level link),
//!   the worst case for Bayesian-Independence.
//! * **No Stationarity** — same placement as No Independence, plus the
//!   congestion probabilities are re-drawn every few intervals, the worst
//!   case for Bayesian-Correlation.
//! * **Sparse Topology** — Random Congestion applied to a Sparse (instead of
//!   Brite) topology; the scenario itself is the same, only the topology
//!   differs, so this kind carries no extra knobs here.
//!
//! For the Probability-Computation evaluation (§5.4) the paper additionally
//! layers non-stationarity on top of every scenario; use
//! [`ScenarioConfig::with_nonstationary`] for that.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

use tomo_graph::{LinkId, Network};

use crate::correlation_model::{shared_router_groups, CongestionModel, Driver};

/// The named scenarios of the paper's evaluation, plus the streaming
/// (dynamic-workload) scenarios used by the `tomo-serve` daemon evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Congestible links chosen uniformly at random (Brite topology).
    RandomCongestion,
    /// Congestible links concentrated at the network edge.
    ConcentratedCongestion,
    /// Congestible links chosen so that each is correlated with at least one
    /// other congestible link.
    NoIndependence,
    /// No Independence placement plus non-stationary probabilities.
    NoStationarity,
    /// Random Congestion applied to a Sparse topology.
    SparseTopology,
    /// Streaming workload: congestion probabilities drift by a bounded
    /// random walk every epoch instead of being re-drawn, modelling loss
    /// rates that evolve gradually under load.
    DriftingLoss,
    /// Streaming workload: the correlation structure itself churns — the
    /// congestible links are periodically re-partitioned into new correlated
    /// driver groups with fresh probabilities.
    CorrelationChurn,
}

impl ScenarioKind {
    /// The paper's five scenario kinds, in the order of Fig. 3. The
    /// streaming kinds are separate (see [`ScenarioKind::streaming`]) so the
    /// figure grids keep their published shape.
    pub fn all() -> [ScenarioKind; 5] {
        [
            ScenarioKind::RandomCongestion,
            ScenarioKind::ConcentratedCongestion,
            ScenarioKind::NoIndependence,
            ScenarioKind::NoStationarity,
            ScenarioKind::SparseTopology,
        ]
    }

    /// The streaming (dynamic-workload) scenario kinds.
    pub fn streaming() -> [ScenarioKind; 2] {
        [ScenarioKind::DriftingLoss, ScenarioKind::CorrelationChurn]
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::RandomCongestion => "Random Congestion",
            ScenarioKind::ConcentratedCongestion => "Concentrated Congestion",
            ScenarioKind::NoIndependence => "No Independence",
            ScenarioKind::NoStationarity => "No Stationarity",
            ScenarioKind::SparseTopology => "Sparse Topology",
            ScenarioKind::DriftingLoss => "Drifting Loss",
            ScenarioKind::CorrelationChurn => "Correlation Churn",
        }
    }
}

/// How the congestion probabilities of a non-stationary scenario move
/// between epochs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ProbabilityEvolution {
    /// Re-draw every driver probability uniformly from (0, 1) — the paper's
    /// "No Stationarity" behavior.
    Redraw,
    /// Bounded random walk: each driver probability moves by a uniform step
    /// in `[-sigma, sigma]`, clamped to (0, 1).
    Drift {
        /// Maximum per-epoch step size.
        sigma: f64,
    },
    /// Re-partition the congestible links into new driver groups of at most
    /// `max_group` links each, with fresh probabilities — the correlation
    /// structure itself changes.
    Churn {
        /// Largest driver group formed by a churn step.
        max_group: usize,
    },
}

/// How the congestible links are placed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CongestiblePlacement {
    /// Uniformly at random over the observed links.
    Random,
    /// Toward the edge of the network (links close to path endpoints).
    Edge,
    /// Grouped so that every congestible link shares a router-level link with
    /// at least one other congestible link.
    Correlated,
}

/// Full configuration of a congestion scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// The named scenario this configuration corresponds to.
    pub kind: ScenarioKind,
    /// Placement of the congestible links.
    pub placement: CongestiblePlacement,
    /// Fraction of links that get a non-zero congestion probability
    /// (0.10 in the paper).
    pub congestible_fraction: f64,
    /// Whether the congestion probabilities stay fixed for the whole
    /// experiment.
    pub stationary: bool,
    /// For non-stationary runs: the probabilities are re-drawn every
    /// `epoch_len` intervals ("every few time intervals").
    pub epoch_len: usize,
    /// How probabilities move between epochs of a non-stationary run.
    /// `None` keeps the paper's behavior ([`ProbabilityEvolution::Redraw`]);
    /// the streaming scenarios use drift / churn. Optional so grid files
    /// written before this field existed still parse.
    pub evolution: Option<ProbabilityEvolution>,
}

impl ScenarioConfig {
    /// The paper's *Random Congestion* scenario.
    pub fn random_congestion() -> Self {
        Self {
            kind: ScenarioKind::RandomCongestion,
            placement: CongestiblePlacement::Random,
            congestible_fraction: 0.10,
            stationary: true,
            epoch_len: 50,
            evolution: None,
        }
    }

    /// The paper's *Concentrated Congestion* scenario.
    pub fn concentrated_congestion() -> Self {
        Self {
            kind: ScenarioKind::ConcentratedCongestion,
            placement: CongestiblePlacement::Edge,
            ..Self::random_congestion()
        }
    }

    /// The paper's *No Independence* scenario.
    pub fn no_independence() -> Self {
        Self {
            kind: ScenarioKind::NoIndependence,
            placement: CongestiblePlacement::Correlated,
            ..Self::random_congestion()
        }
    }

    /// The paper's *No Stationarity* scenario (correlated placement plus
    /// non-stationary probabilities).
    pub fn no_stationarity() -> Self {
        Self {
            kind: ScenarioKind::NoStationarity,
            placement: CongestiblePlacement::Correlated,
            stationary: false,
            ..Self::random_congestion()
        }
    }

    /// The paper's *Sparse Topology* scenario (random placement; the harness
    /// pairs it with a Sparse rather than Brite topology).
    pub fn sparse_topology() -> Self {
        Self {
            kind: ScenarioKind::SparseTopology,
            ..Self::random_congestion()
        }
    }

    /// The streaming *Drifting Loss* scenario: random placement, but the
    /// probabilities random-walk every `epoch_len` intervals instead of
    /// being re-drawn, so estimates decay gracefully rather than jumping.
    pub fn drifting_loss() -> Self {
        Self {
            kind: ScenarioKind::DriftingLoss,
            stationary: false,
            epoch_len: 20,
            evolution: Some(ProbabilityEvolution::Drift { sigma: 0.15 }),
            ..Self::random_congestion()
        }
    }

    /// The streaming *Correlation Churn* scenario: correlated placement, and
    /// every `epoch_len` intervals the congestible links are re-partitioned
    /// into new correlated driver groups with fresh probabilities.
    pub fn correlation_churn() -> Self {
        Self {
            kind: ScenarioKind::CorrelationChurn,
            placement: CongestiblePlacement::Correlated,
            stationary: false,
            epoch_len: 25,
            evolution: Some(ProbabilityEvolution::Churn { max_group: 3 }),
            ..Self::random_congestion()
        }
    }

    /// The configuration for a named scenario kind.
    pub fn for_kind(kind: ScenarioKind) -> Self {
        match kind {
            ScenarioKind::RandomCongestion => Self::random_congestion(),
            ScenarioKind::ConcentratedCongestion => Self::concentrated_congestion(),
            ScenarioKind::NoIndependence => Self::no_independence(),
            ScenarioKind::NoStationarity => Self::no_stationarity(),
            ScenarioKind::SparseTopology => Self::sparse_topology(),
            ScenarioKind::DriftingLoss => Self::drifting_loss(),
            ScenarioKind::CorrelationChurn => Self::correlation_churn(),
        }
    }

    /// Evolves the congestion model between epochs of a non-stationary run
    /// according to this scenario's [`ProbabilityEvolution`].
    pub fn evolve_model(&self, model: &CongestionModel, rng: &mut StdRng) -> CongestionModel {
        match self.evolution.unwrap_or(ProbabilityEvolution::Redraw) {
            ProbabilityEvolution::Redraw => redraw_probabilities(model, rng),
            ProbabilityEvolution::Drift { sigma } => drift_probabilities(model, sigma, rng),
            ProbabilityEvolution::Churn { max_group } => churn_drivers(model, max_group, rng),
        }
    }

    /// Layers non-stationarity on top of this scenario (used by the Fig. 4
    /// experiments, which add "No Stationarity" to every congestion
    /// scenario).
    pub fn with_nonstationary(mut self, epoch_len: usize) -> Self {
        self.stationary = false;
        self.epoch_len = epoch_len.max(1);
        self
    }

    /// Builds the congestion model (drivers + probabilities) for one epoch.
    ///
    /// The same placement is kept across epochs of a non-stationary run; only
    /// the probabilities are re-drawn (see
    /// [`crate::Simulator`]), matching §3.2: "the congestion
    /// probabilities of links (the 10 % of them, that is) change every few
    /// time intervals".
    pub fn build_model(&self, network: &Network, rng: &mut StdRng) -> CongestionModel {
        let placement = self.place_congestible(network, rng);
        build_drivers(network, &placement, self.placement, rng)
    }

    /// Chooses which links are congestible under this scenario.
    pub fn place_congestible(&self, network: &Network, rng: &mut StdRng) -> Vec<LinkId> {
        let observed: Vec<LinkId> = network
            .link_ids()
            .filter(|&l| !network.paths_through_link(l).is_empty())
            .collect();
        let target = ((network.num_links() as f64 * self.congestible_fraction).round() as usize)
            .clamp(1, observed.len());
        match self.placement {
            CongestiblePlacement::Random => {
                let mut pool = observed;
                pool.shuffle(rng);
                pool.truncate(target);
                pool.sort_unstable();
                pool
            }
            CongestiblePlacement::Edge => {
                let mut scored: Vec<(f64, LinkId)> = observed
                    .iter()
                    .map(|&l| (edge_score(network, l), l))
                    .collect();
                // Highest edge score first (closest to path endpoints).
                scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                let mut picked: Vec<LinkId> =
                    scored.into_iter().take(target).map(|(_, l)| l).collect();
                picked.sort_unstable();
                picked
            }
            CongestiblePlacement::Correlated => {
                let mut groups = shared_router_groups(network);
                groups.shuffle(rng);
                let mut picked: Vec<LinkId> = Vec::new();
                let mut seen: HashSet<LinkId> = HashSet::new();
                for g in groups {
                    if picked.len() >= target {
                        break;
                    }
                    let fresh: Vec<LinkId> = g.into_iter().filter(|l| !seen.contains(l)).collect();
                    if fresh.len() < 2 {
                        continue;
                    }
                    for l in fresh {
                        seen.insert(l);
                        picked.push(l);
                    }
                }
                // If the topology does not offer enough correlated groups
                // (e.g. tiny test instances), fill up randomly so the
                // congestible fraction is still honored.
                if picked.len() < target {
                    let mut rest: Vec<LinkId> =
                        observed.into_iter().filter(|l| !seen.contains(l)).collect();
                    rest.shuffle(rng);
                    picked.extend(rest.into_iter().take(target - picked.len()));
                }
                picked.sort_unstable();
                picked
            }
        }
    }
}

/// How close a link is to the edge of the network: the mean, over the paths
/// traversing it, of its normalized position along the path (0 = first hop
/// at the source, 1 = last hop before the destination). Links with a high
/// score sit near path endpoints, i.e. at the edge of the network.
pub fn edge_score(network: &Network, link: LinkId) -> f64 {
    let paths = network.paths_through_link(link);
    if paths.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for &p in paths {
        let path = network.path(p);
        let pos = path
            .links
            .iter()
            .position(|&l| l == link)
            .expect("index is consistent") as f64;
        let denom = (path.len() - 1).max(1) as f64;
        total += pos / denom;
    }
    total / paths.len() as f64
}

/// Builds the drivers for a set of congestible links.
///
/// With [`CongestiblePlacement::Correlated`], links of the same shared-router
/// group get a single shared driver (perfect correlation); otherwise every
/// congestible link gets its own private driver. Probabilities are drawn
/// uniformly from (0, 1), as in the paper.
fn build_drivers(
    network: &Network,
    congestible: &[LinkId],
    placement: CongestiblePlacement,
    rng: &mut StdRng,
) -> CongestionModel {
    let congestible_set: HashSet<LinkId> = congestible.iter().copied().collect();
    let mut assigned: HashSet<LinkId> = HashSet::new();
    let mut drivers = Vec::new();

    if placement == CongestiblePlacement::Correlated {
        for group in shared_router_groups(network) {
            let members: Vec<LinkId> = group
                .into_iter()
                .filter(|l| congestible_set.contains(l) && !assigned.contains(l))
                .collect();
            if members.len() < 2 {
                continue;
            }
            for &l in &members {
                assigned.insert(l);
            }
            drivers.push(Driver {
                probability: rng.gen_range(0.01..1.0),
                members,
            });
        }
    }
    for &l in congestible {
        if assigned.contains(&l) {
            continue;
        }
        drivers.push(Driver {
            probability: rng.gen_range(0.01..1.0),
            members: vec![l],
        });
    }
    CongestionModel::new(drivers)
}

/// Re-draws every driver probability (used between epochs of a
/// non-stationary experiment) while keeping the driver structure fixed.
pub fn redraw_probabilities(model: &CongestionModel, rng: &mut StdRng) -> CongestionModel {
    let drivers = model
        .drivers
        .iter()
        .map(|d| Driver {
            probability: rng.gen_range(0.01..1.0),
            members: d.members.clone(),
        })
        .collect();
    CongestionModel::new(drivers)
}

/// Moves every driver probability by a bounded uniform step in
/// `[-sigma, sigma]`, clamped into (0, 1), keeping the driver structure
/// fixed — the *Drifting Loss* evolution.
pub fn drift_probabilities(
    model: &CongestionModel,
    sigma: f64,
    rng: &mut StdRng,
) -> CongestionModel {
    let sigma = sigma.abs().max(1e-6);
    let drivers = model
        .drivers
        .iter()
        .map(|d| Driver {
            probability: (d.probability + rng.gen_range(-sigma..sigma)).clamp(0.01, 0.99),
            members: d.members.clone(),
        })
        .collect();
    CongestionModel::new(drivers)
}

/// Re-partitions the congestible links into new driver groups of at most
/// `max_group` links with fresh probabilities — the *Correlation Churn*
/// evolution. The congestible link *set* is preserved; only the grouping
/// (which links fail together) and the probabilities change.
pub fn churn_drivers(
    model: &CongestionModel,
    max_group: usize,
    rng: &mut StdRng,
) -> CongestionModel {
    let max_group = max_group.max(1);
    let mut links = model.congestible_links();
    links.shuffle(rng);
    let mut drivers = Vec::new();
    let mut i = 0usize;
    while i < links.len() {
        let size = rng.gen_range(1..=max_group).min(links.len() - i);
        drivers.push(Driver {
            probability: rng.gen_range(0.01..1.0),
            members: links[i..i + size].to_vec(),
        });
        i += size;
    }
    CongestionModel::new(drivers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tomo_graph::toy::fig1_case1;

    #[test]
    fn named_scenarios_have_expected_knobs() {
        assert!(ScenarioConfig::random_congestion().stationary);
        assert_eq!(
            ScenarioConfig::concentrated_congestion().placement,
            CongestiblePlacement::Edge
        );
        assert_eq!(
            ScenarioConfig::no_independence().placement,
            CongestiblePlacement::Correlated
        );
        assert!(!ScenarioConfig::no_stationarity().stationary);
        for kind in ScenarioKind::all() {
            assert_eq!(ScenarioConfig::for_kind(kind).kind, kind);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn with_nonstationary_overrides_stationarity() {
        let s = ScenarioConfig::random_congestion().with_nonstationary(25);
        assert!(!s.stationary);
        assert_eq!(s.epoch_len, 25);
    }

    #[test]
    fn placement_honors_the_fraction() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(1);
        let mut cfg = ScenarioConfig::random_congestion();
        cfg.congestible_fraction = 0.5;
        let picked = cfg.place_congestible(&net, &mut rng);
        assert_eq!(picked.len(), 2); // 4 links * 0.5
    }

    #[test]
    fn edge_scores_rank_destination_links_higher() {
        let net = fig1_case1();
        // e2 and e3 are last hops of their paths; e1 and e4 are first hops.
        assert!(edge_score(&net, tomo_graph::toy::E2) > edge_score(&net, tomo_graph::toy::E1));
        assert!(edge_score(&net, tomo_graph::toy::E3) > edge_score(&net, tomo_graph::toy::E4));
    }

    #[test]
    fn edge_placement_prefers_edge_links() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(2);
        let mut cfg = ScenarioConfig::concentrated_congestion();
        cfg.congestible_fraction = 0.5;
        let picked = cfg.place_congestible(&net, &mut rng);
        assert_eq!(picked, vec![tomo_graph::toy::E2, tomo_graph::toy::E3]);
    }

    #[test]
    fn model_marginals_are_in_range_and_limited_to_congestible() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = ScenarioConfig::random_congestion();
        cfg.congestible_fraction = 0.5;
        let model = cfg.build_model(&net, &mut rng);
        let congestible = model.congestible_links();
        assert_eq!(congestible.len(), 2);
        for l in net.link_ids() {
            let m = model.marginal(l);
            if congestible.contains(&l) {
                assert!(m > 0.0 && m < 1.0);
            } else {
                assert_eq!(m, 0.0);
            }
        }
    }

    #[test]
    fn streaming_kinds_resolve_and_carry_evolutions() {
        let drift = ScenarioConfig::drifting_loss();
        assert!(!drift.stationary);
        assert!(matches!(
            drift.evolution,
            Some(ProbabilityEvolution::Drift { .. })
        ));
        let churn = ScenarioConfig::correlation_churn();
        assert_eq!(churn.placement, CongestiblePlacement::Correlated);
        assert!(matches!(
            churn.evolution,
            Some(ProbabilityEvolution::Churn { .. })
        ));
        for kind in ScenarioKind::streaming() {
            assert_eq!(ScenarioConfig::for_kind(kind).kind, kind);
            assert!(!kind.label().is_empty());
        }
        // The paper's figure list is unchanged by the streaming kinds.
        assert_eq!(ScenarioKind::all().len(), 5);
    }

    #[test]
    fn drift_moves_probabilities_by_bounded_steps() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(9);
        let mut cfg = ScenarioConfig::drifting_loss();
        cfg.congestible_fraction = 0.5;
        let m1 = cfg.build_model(&net, &mut rng);
        let m2 = drift_probabilities(&m1, 0.15, &mut rng);
        assert_eq!(m1.congestible_links(), m2.congestible_links());
        for (a, b) in m1.drivers.iter().zip(&m2.drivers) {
            assert_eq!(a.members, b.members);
            assert!((a.probability - b.probability).abs() <= 0.15 + 1e-12);
            assert!((0.01..=0.99).contains(&b.probability));
        }
    }

    #[test]
    fn churn_preserves_the_congestible_set_but_regroups_it() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(11);
        let mut cfg = ScenarioConfig::correlation_churn();
        cfg.congestible_fraction = 1.0; // all 4 toy links, so groups can form
        let m1 = cfg.build_model(&net, &mut rng);
        let m2 = churn_drivers(&m1, 3, &mut rng);
        assert_eq!(m1.congestible_links(), m2.congestible_links());
        for d in &m2.drivers {
            assert!(!d.members.is_empty() && d.members.len() <= 3);
            assert!(d.probability > 0.0 && d.probability < 1.0);
        }
        // Across many churn steps the grouping must actually change at least
        // once (it is a re-partition, not a redraw).
        let sig = |m: &CongestionModel| {
            let mut groups: Vec<Vec<LinkId>> = m
                .drivers
                .iter()
                .map(|d| {
                    let mut g = d.members.clone();
                    g.sort_unstable();
                    g
                })
                .collect();
            groups.sort();
            groups
        };
        let changed = (0..20).any(|_| sig(&churn_drivers(&m1, 3, &mut rng)) != sig(&m1));
        assert!(changed);
    }

    #[test]
    fn evolve_model_dispatches_on_the_configured_evolution() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(13);
        let mut cfg = ScenarioConfig::drifting_loss();
        cfg.congestible_fraction = 0.5;
        let m1 = cfg.build_model(&net, &mut rng);
        let drifted = cfg.evolve_model(&m1, &mut rng);
        for (a, b) in m1.drivers.iter().zip(&drifted.drivers) {
            assert!((a.probability - b.probability).abs() <= 0.15 + 1e-12);
        }
        // No evolution configured -> paper redraw semantics.
        cfg.evolution = None;
        let redrawn = cfg.evolve_model(&m1, &mut rng);
        assert_eq!(m1.congestible_links(), redrawn.congestible_links());
    }

    #[test]
    fn redraw_keeps_structure_but_changes_probabilities() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(4);
        let mut cfg = ScenarioConfig::no_stationarity();
        cfg.congestible_fraction = 0.5;
        let m1 = cfg.build_model(&net, &mut rng);
        let m2 = redraw_probabilities(&m1, &mut rng);
        assert_eq!(m1.congestible_links(), m2.congestible_links());
        let changed = m1
            .drivers
            .iter()
            .zip(&m2.drivers)
            .any(|(a, b)| (a.probability - b.probability).abs() > 1e-9);
        assert!(changed);
    }
}
