//! Congestion scenarios (§3.2 and §5.4 of the paper).
//!
//! All scenarios share the same skeleton: 10 % of the links are *congestible*
//! (non-zero congestion probability drawn uniformly from (0, 1)); the
//! scenarios differ in **which** links are congestible, whether they are
//! mutually **correlated**, and whether the probabilities are **stationary**:
//!
//! * **Random Congestion** — congestible links chosen uniformly at random.
//! * **Concentrated Congestion** — congestible links located toward the edge
//!   of the network (no congestion at the core), the worst case for the
//!   Sparsity algorithm.
//! * **No Independence** — congestible links chosen so that each is
//!   correlated with at least one other (they share a router-level link),
//!   the worst case for Bayesian-Independence.
//! * **No Stationarity** — same placement as No Independence, plus the
//!   congestion probabilities are re-drawn every few intervals, the worst
//!   case for Bayesian-Correlation.
//! * **Sparse Topology** — Random Congestion applied to a Sparse (instead of
//!   Brite) topology; the scenario itself is the same, only the topology
//!   differs, so this kind carries no extra knobs here.
//!
//! For the Probability-Computation evaluation (§5.4) the paper additionally
//! layers non-stationarity on top of every scenario; use
//! [`ScenarioConfig::with_nonstationary`] for that.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

use tomo_graph::{LinkId, Network};

use crate::correlation_model::{shared_router_groups, CongestionModel, Driver};

/// The named scenarios of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Congestible links chosen uniformly at random (Brite topology).
    RandomCongestion,
    /// Congestible links concentrated at the network edge.
    ConcentratedCongestion,
    /// Congestible links chosen so that each is correlated with at least one
    /// other congestible link.
    NoIndependence,
    /// No Independence placement plus non-stationary probabilities.
    NoStationarity,
    /// Random Congestion applied to a Sparse topology.
    SparseTopology,
}

impl ScenarioKind {
    /// All scenario kinds, in the order of Fig. 3 of the paper.
    pub fn all() -> [ScenarioKind; 5] {
        [
            ScenarioKind::RandomCongestion,
            ScenarioKind::ConcentratedCongestion,
            ScenarioKind::NoIndependence,
            ScenarioKind::NoStationarity,
            ScenarioKind::SparseTopology,
        ]
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::RandomCongestion => "Random Congestion",
            ScenarioKind::ConcentratedCongestion => "Concentrated Congestion",
            ScenarioKind::NoIndependence => "No Independence",
            ScenarioKind::NoStationarity => "No Stationarity",
            ScenarioKind::SparseTopology => "Sparse Topology",
        }
    }
}

/// How the congestible links are placed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CongestiblePlacement {
    /// Uniformly at random over the observed links.
    Random,
    /// Toward the edge of the network (links close to path endpoints).
    Edge,
    /// Grouped so that every congestible link shares a router-level link with
    /// at least one other congestible link.
    Correlated,
}

/// Full configuration of a congestion scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// The named scenario this configuration corresponds to.
    pub kind: ScenarioKind,
    /// Placement of the congestible links.
    pub placement: CongestiblePlacement,
    /// Fraction of links that get a non-zero congestion probability
    /// (0.10 in the paper).
    pub congestible_fraction: f64,
    /// Whether the congestion probabilities stay fixed for the whole
    /// experiment.
    pub stationary: bool,
    /// For non-stationary runs: the probabilities are re-drawn every
    /// `epoch_len` intervals ("every few time intervals").
    pub epoch_len: usize,
}

impl ScenarioConfig {
    /// The paper's *Random Congestion* scenario.
    pub fn random_congestion() -> Self {
        Self {
            kind: ScenarioKind::RandomCongestion,
            placement: CongestiblePlacement::Random,
            congestible_fraction: 0.10,
            stationary: true,
            epoch_len: 50,
        }
    }

    /// The paper's *Concentrated Congestion* scenario.
    pub fn concentrated_congestion() -> Self {
        Self {
            kind: ScenarioKind::ConcentratedCongestion,
            placement: CongestiblePlacement::Edge,
            ..Self::random_congestion()
        }
    }

    /// The paper's *No Independence* scenario.
    pub fn no_independence() -> Self {
        Self {
            kind: ScenarioKind::NoIndependence,
            placement: CongestiblePlacement::Correlated,
            ..Self::random_congestion()
        }
    }

    /// The paper's *No Stationarity* scenario (correlated placement plus
    /// non-stationary probabilities).
    pub fn no_stationarity() -> Self {
        Self {
            kind: ScenarioKind::NoStationarity,
            placement: CongestiblePlacement::Correlated,
            stationary: false,
            ..Self::random_congestion()
        }
    }

    /// The paper's *Sparse Topology* scenario (random placement; the harness
    /// pairs it with a Sparse rather than Brite topology).
    pub fn sparse_topology() -> Self {
        Self {
            kind: ScenarioKind::SparseTopology,
            ..Self::random_congestion()
        }
    }

    /// The configuration for a named scenario kind.
    pub fn for_kind(kind: ScenarioKind) -> Self {
        match kind {
            ScenarioKind::RandomCongestion => Self::random_congestion(),
            ScenarioKind::ConcentratedCongestion => Self::concentrated_congestion(),
            ScenarioKind::NoIndependence => Self::no_independence(),
            ScenarioKind::NoStationarity => Self::no_stationarity(),
            ScenarioKind::SparseTopology => Self::sparse_topology(),
        }
    }

    /// Layers non-stationarity on top of this scenario (used by the Fig. 4
    /// experiments, which add "No Stationarity" to every congestion
    /// scenario).
    pub fn with_nonstationary(mut self, epoch_len: usize) -> Self {
        self.stationary = false;
        self.epoch_len = epoch_len.max(1);
        self
    }

    /// Builds the congestion model (drivers + probabilities) for one epoch.
    ///
    /// The same placement is kept across epochs of a non-stationary run; only
    /// the probabilities are re-drawn (see
    /// [`crate::Simulator`]), matching §3.2: "the congestion
    /// probabilities of links (the 10 % of them, that is) change every few
    /// time intervals".
    pub fn build_model(&self, network: &Network, rng: &mut StdRng) -> CongestionModel {
        let placement = self.place_congestible(network, rng);
        build_drivers(network, &placement, self.placement, rng)
    }

    /// Chooses which links are congestible under this scenario.
    pub fn place_congestible(&self, network: &Network, rng: &mut StdRng) -> Vec<LinkId> {
        let observed: Vec<LinkId> = network
            .link_ids()
            .filter(|&l| !network.paths_through_link(l).is_empty())
            .collect();
        let target = ((network.num_links() as f64 * self.congestible_fraction).round() as usize)
            .clamp(1, observed.len());
        match self.placement {
            CongestiblePlacement::Random => {
                let mut pool = observed;
                pool.shuffle(rng);
                pool.truncate(target);
                pool.sort_unstable();
                pool
            }
            CongestiblePlacement::Edge => {
                let mut scored: Vec<(f64, LinkId)> = observed
                    .iter()
                    .map(|&l| (edge_score(network, l), l))
                    .collect();
                // Highest edge score first (closest to path endpoints).
                scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                let mut picked: Vec<LinkId> =
                    scored.into_iter().take(target).map(|(_, l)| l).collect();
                picked.sort_unstable();
                picked
            }
            CongestiblePlacement::Correlated => {
                let mut groups = shared_router_groups(network);
                groups.shuffle(rng);
                let mut picked: Vec<LinkId> = Vec::new();
                let mut seen: HashSet<LinkId> = HashSet::new();
                for g in groups {
                    if picked.len() >= target {
                        break;
                    }
                    let fresh: Vec<LinkId> = g.into_iter().filter(|l| !seen.contains(l)).collect();
                    if fresh.len() < 2 {
                        continue;
                    }
                    for l in fresh {
                        seen.insert(l);
                        picked.push(l);
                    }
                }
                // If the topology does not offer enough correlated groups
                // (e.g. tiny test instances), fill up randomly so the
                // congestible fraction is still honored.
                if picked.len() < target {
                    let mut rest: Vec<LinkId> =
                        observed.into_iter().filter(|l| !seen.contains(l)).collect();
                    rest.shuffle(rng);
                    picked.extend(rest.into_iter().take(target - picked.len()));
                }
                picked.sort_unstable();
                picked
            }
        }
    }
}

/// How close a link is to the edge of the network: the mean, over the paths
/// traversing it, of its normalized position along the path (0 = first hop
/// at the source, 1 = last hop before the destination). Links with a high
/// score sit near path endpoints, i.e. at the edge of the network.
pub fn edge_score(network: &Network, link: LinkId) -> f64 {
    let paths = network.paths_through_link(link);
    if paths.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for &p in paths {
        let path = network.path(p);
        let pos = path
            .links
            .iter()
            .position(|&l| l == link)
            .expect("index is consistent") as f64;
        let denom = (path.len() - 1).max(1) as f64;
        total += pos / denom;
    }
    total / paths.len() as f64
}

/// Builds the drivers for a set of congestible links.
///
/// With [`CongestiblePlacement::Correlated`], links of the same shared-router
/// group get a single shared driver (perfect correlation); otherwise every
/// congestible link gets its own private driver. Probabilities are drawn
/// uniformly from (0, 1), as in the paper.
fn build_drivers(
    network: &Network,
    congestible: &[LinkId],
    placement: CongestiblePlacement,
    rng: &mut StdRng,
) -> CongestionModel {
    let congestible_set: HashSet<LinkId> = congestible.iter().copied().collect();
    let mut assigned: HashSet<LinkId> = HashSet::new();
    let mut drivers = Vec::new();

    if placement == CongestiblePlacement::Correlated {
        for group in shared_router_groups(network) {
            let members: Vec<LinkId> = group
                .into_iter()
                .filter(|l| congestible_set.contains(l) && !assigned.contains(l))
                .collect();
            if members.len() < 2 {
                continue;
            }
            for &l in &members {
                assigned.insert(l);
            }
            drivers.push(Driver {
                probability: rng.gen_range(0.01..1.0),
                members,
            });
        }
    }
    for &l in congestible {
        if assigned.contains(&l) {
            continue;
        }
        drivers.push(Driver {
            probability: rng.gen_range(0.01..1.0),
            members: vec![l],
        });
    }
    CongestionModel::new(drivers)
}

/// Re-draws every driver probability (used between epochs of a
/// non-stationary experiment) while keeping the driver structure fixed.
pub fn redraw_probabilities(model: &CongestionModel, rng: &mut StdRng) -> CongestionModel {
    let drivers = model
        .drivers
        .iter()
        .map(|d| Driver {
            probability: rng.gen_range(0.01..1.0),
            members: d.members.clone(),
        })
        .collect();
    CongestionModel::new(drivers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tomo_graph::toy::fig1_case1;

    #[test]
    fn named_scenarios_have_expected_knobs() {
        assert!(ScenarioConfig::random_congestion().stationary);
        assert_eq!(
            ScenarioConfig::concentrated_congestion().placement,
            CongestiblePlacement::Edge
        );
        assert_eq!(
            ScenarioConfig::no_independence().placement,
            CongestiblePlacement::Correlated
        );
        assert!(!ScenarioConfig::no_stationarity().stationary);
        for kind in ScenarioKind::all() {
            assert_eq!(ScenarioConfig::for_kind(kind).kind, kind);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn with_nonstationary_overrides_stationarity() {
        let s = ScenarioConfig::random_congestion().with_nonstationary(25);
        assert!(!s.stationary);
        assert_eq!(s.epoch_len, 25);
    }

    #[test]
    fn placement_honors_the_fraction() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(1);
        let mut cfg = ScenarioConfig::random_congestion();
        cfg.congestible_fraction = 0.5;
        let picked = cfg.place_congestible(&net, &mut rng);
        assert_eq!(picked.len(), 2); // 4 links * 0.5
    }

    #[test]
    fn edge_scores_rank_destination_links_higher() {
        let net = fig1_case1();
        // e2 and e3 are last hops of their paths; e1 and e4 are first hops.
        assert!(edge_score(&net, tomo_graph::toy::E2) > edge_score(&net, tomo_graph::toy::E1));
        assert!(edge_score(&net, tomo_graph::toy::E3) > edge_score(&net, tomo_graph::toy::E4));
    }

    #[test]
    fn edge_placement_prefers_edge_links() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(2);
        let mut cfg = ScenarioConfig::concentrated_congestion();
        cfg.congestible_fraction = 0.5;
        let picked = cfg.place_congestible(&net, &mut rng);
        assert_eq!(picked, vec![tomo_graph::toy::E2, tomo_graph::toy::E3]);
    }

    #[test]
    fn model_marginals_are_in_range_and_limited_to_congestible() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = ScenarioConfig::random_congestion();
        cfg.congestible_fraction = 0.5;
        let model = cfg.build_model(&net, &mut rng);
        let congestible = model.congestible_links();
        assert_eq!(congestible.len(), 2);
        for l in net.link_ids() {
            let m = model.marginal(l);
            if congestible.contains(&l) {
                assert!(m > 0.0 && m < 1.0);
            } else {
                assert_eq!(m, 0.0);
            }
        }
    }

    #[test]
    fn redraw_keeps_structure_but_changes_probabilities() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(4);
        let mut cfg = ScenarioConfig::no_stationarity();
        cfg.congestible_fraction = 0.5;
        let m1 = cfg.build_model(&net, &mut rng);
        let m2 = redraw_probabilities(&m1, &mut rng);
        assert_eq!(m1.congestible_links(), m2.congestible_links());
        let changed = m1
            .drivers
            .iter()
            .zip(&m2.drivers)
            .any(|(a, b)| (a.probability - b.probability).abs() > 1e-9);
        assert!(changed);
    }
}
