//! Congestion scenarios (§3.2 and §5.4 of the paper).
//!
//! All scenarios share the same skeleton: 10 % of the links are *congestible*
//! (non-zero congestion probability drawn uniformly from (0, 1)); the
//! scenarios differ in **which** links are congestible, whether they are
//! mutually **correlated**, and whether the probabilities are **stationary**:
//!
//! * **Random Congestion** — congestible links chosen uniformly at random.
//! * **Concentrated Congestion** — congestible links located toward the edge
//!   of the network (no congestion at the core), the worst case for the
//!   Sparsity algorithm.
//! * **No Independence** — congestible links chosen so that each is
//!   correlated with at least one other (they share a router-level link),
//!   the worst case for Bayesian-Independence.
//! * **No Stationarity** — same placement as No Independence, plus the
//!   congestion probabilities are re-drawn every few intervals, the worst
//!   case for Bayesian-Correlation.
//! * **Sparse Topology** — Random Congestion applied to a Sparse (instead of
//!   Brite) topology; the scenario itself is the same, only the topology
//!   differs, so this kind carries no extra knobs here.
//!
//! For the Probability-Computation evaluation (§5.4) the paper additionally
//! layers non-stationarity on top of every scenario; use
//! [`ScenarioConfig::with_nonstationary`] for that.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

use tomo_chaos::FaultEvent;
use tomo_graph::{LinkId, Network};

use crate::correlation_model::{shared_router_groups, CongestionModel, Driver};
use crate::dynamics;

/// The named scenarios of the paper's evaluation, plus the streaming
/// (dynamic-workload) scenarios used by the `tomo-serve` daemon evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Congestible links chosen uniformly at random (Brite topology).
    RandomCongestion,
    /// Congestible links concentrated at the network edge.
    ConcentratedCongestion,
    /// Congestible links chosen so that each is correlated with at least one
    /// other congestible link.
    NoIndependence,
    /// No Independence placement plus non-stationary probabilities.
    NoStationarity,
    /// Random Congestion applied to a Sparse topology.
    SparseTopology,
    /// Streaming workload: congestion probabilities drift by a bounded
    /// random walk every epoch instead of being re-drawn, modelling loss
    /// rates that evolve gradually under load.
    DriftingLoss,
    /// Streaming workload: the correlation structure itself churns — the
    /// congestible links are periodically re-partitioned into new correlated
    /// driver groups with fresh probabilities.
    CorrelationChurn,
    /// Chaos workload: two-state Markov (Gilbert–Elliott) bursty loss — each
    /// driver alternates between a low-loss good state and a high-loss bad
    /// state with configured transition probabilities.
    BurstyLoss,
    /// Chaos workload: shared-risk link groups (correlated placement) fail
    /// and recover together, a correlated failure cascade.
    LinkCascade,
    /// Chaos workload: links flap on a duty-cycle schedule with staggered
    /// phases.
    FlappingLinks,
    /// Chaos workload: congestion probabilities follow a sinusoidal diurnal
    /// load curve.
    DiurnalLoad,
}

impl ScenarioKind {
    /// The paper's five scenario kinds, in the order of Fig. 3. The
    /// streaming kinds are separate (see [`ScenarioKind::streaming`]) so the
    /// figure grids keep their published shape.
    pub fn all() -> [ScenarioKind; 5] {
        [
            ScenarioKind::RandomCongestion,
            ScenarioKind::ConcentratedCongestion,
            ScenarioKind::NoIndependence,
            ScenarioKind::NoStationarity,
            ScenarioKind::SparseTopology,
        ]
    }

    /// The streaming (dynamic-workload) scenario kinds.
    pub fn streaming() -> [ScenarioKind; 2] {
        [ScenarioKind::DriftingLoss, ScenarioKind::CorrelationChurn]
    }

    /// The adversarial (chaos) scenario kinds, in the order the chaos grid
    /// sweeps them.
    pub fn chaos() -> [ScenarioKind; 4] {
        [
            ScenarioKind::BurstyLoss,
            ScenarioKind::LinkCascade,
            ScenarioKind::FlappingLinks,
            ScenarioKind::DiurnalLoad,
        ]
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::RandomCongestion => "Random Congestion",
            ScenarioKind::ConcentratedCongestion => "Concentrated Congestion",
            ScenarioKind::NoIndependence => "No Independence",
            ScenarioKind::NoStationarity => "No Stationarity",
            ScenarioKind::SparseTopology => "Sparse Topology",
            ScenarioKind::DriftingLoss => "Drifting Loss",
            ScenarioKind::CorrelationChurn => "Correlation Churn",
            ScenarioKind::BurstyLoss => "Bursty Loss",
            ScenarioKind::LinkCascade => "Link Cascade",
            ScenarioKind::FlappingLinks => "Flapping Links",
            ScenarioKind::DiurnalLoad => "Diurnal Load",
        }
    }
}

/// How the congestion probabilities of a non-stationary scenario move
/// between epochs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ProbabilityEvolution {
    /// Re-draw every driver probability uniformly from (0, 1) — the paper's
    /// "No Stationarity" behavior.
    Redraw,
    /// Bounded random walk: each driver probability moves by a uniform step
    /// in `[-sigma, sigma]`, clamped to (0, 1).
    Drift {
        /// Maximum per-epoch step size.
        sigma: f64,
    },
    /// Re-partition the congestible links into new driver groups of at most
    /// `max_group` links each, with fresh probabilities — the correlation
    /// structure itself changes.
    Churn {
        /// Largest driver group formed by a churn step.
        max_group: usize,
    },
    /// Two-state Markov bursty loss per driver: good ↔ bad transitions with
    /// probabilities `p_gb` / `p_bg`, pinning the congestion probability to
    /// `good_loss` / `bad_loss`. Emits `BurstStart` / `BurstEnd` fault
    /// events on transitions.
    GilbertElliott {
        /// Per-epoch good → bad transition probability.
        p_gb: f64,
        /// Per-epoch bad → good transition probability.
        p_bg: f64,
        /// Congestion probability in the good state.
        good_loss: f64,
        /// Congestion probability in the bad state.
        bad_loss: f64,
    },
    /// Shared-risk link groups fail (`p_fail`) and recover (`p_recover`)
    /// together; a failed group's links all sit at `down_loss`. Emits
    /// `GroupFail` / `GroupRecover` fault events.
    SrlgCascade {
        /// Per-epoch failure probability of a healthy group.
        p_fail: f64,
        /// Per-epoch recovery probability of a failed group.
        p_recover: f64,
        /// Congestion probability of a failed group's links.
        down_loss: f64,
    },
    /// Deterministic duty-cycle flapping: each driver is up for `duty` of
    /// every `period` epochs (staggered phases), down at `down_loss`
    /// otherwise. Emits `FlapDown` / `FlapUp` fault events.
    Flapping {
        /// Flap cycle length in epochs.
        period: usize,
        /// Fraction of the cycle each driver is up.
        duty: f64,
        /// Congestion probability while down.
        down_loss: f64,
    },
    /// Sinusoidal diurnal load curve: probabilities follow
    /// `baseline · (1 + amplitude · sin(2π·epoch/period))`. Emits
    /// `LoadSwing` fault events at the peak and trough of each cycle.
    Diurnal {
        /// Cycle length in epochs.
        period: usize,
        /// Relative swing amplitude (kept < 1 so probabilities stay valid).
        amplitude: f64,
    },
}

impl ProbabilityEvolution {
    /// A short self-describing label, recorded in sweep JSONL rows so chaos
    /// grids document which dynamics produced each record.
    pub fn label(&self) -> String {
        match self {
            ProbabilityEvolution::Redraw => "redraw".to_string(),
            ProbabilityEvolution::Drift { sigma } => format!("drift({sigma})"),
            ProbabilityEvolution::Churn { max_group } => format!("churn({max_group})"),
            ProbabilityEvolution::GilbertElliott { p_gb, p_bg, .. } => {
                format!("gilbert-elliott({p_gb},{p_bg})")
            }
            ProbabilityEvolution::SrlgCascade {
                p_fail, p_recover, ..
            } => format!("srlg-cascade({p_fail},{p_recover})"),
            ProbabilityEvolution::Flapping { period, duty, .. } => {
                format!("flapping({period},{duty})")
            }
            ProbabilityEvolution::Diurnal { period, amplitude } => {
                format!("diurnal({period},{amplitude})")
            }
        }
    }
}

/// How the congestible links are placed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CongestiblePlacement {
    /// Uniformly at random over the observed links.
    Random,
    /// Toward the edge of the network (links close to path endpoints).
    Edge,
    /// Grouped so that every congestible link shares a router-level link with
    /// at least one other congestible link.
    Correlated,
}

/// Full configuration of a congestion scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// The named scenario this configuration corresponds to.
    pub kind: ScenarioKind,
    /// Placement of the congestible links.
    pub placement: CongestiblePlacement,
    /// Fraction of links that get a non-zero congestion probability
    /// (0.10 in the paper).
    pub congestible_fraction: f64,
    /// Whether the congestion probabilities stay fixed for the whole
    /// experiment.
    pub stationary: bool,
    /// For non-stationary runs: the probabilities are re-drawn every
    /// `epoch_len` intervals ("every few time intervals").
    pub epoch_len: usize,
    /// How probabilities move between epochs of a non-stationary run.
    /// `None` keeps the paper's behavior ([`ProbabilityEvolution::Redraw`]);
    /// the streaming scenarios use drift / churn. Optional so grid files
    /// written before this field existed still parse.
    pub evolution: Option<ProbabilityEvolution>,
}

impl ScenarioConfig {
    /// The paper's *Random Congestion* scenario.
    ///
    /// The evolution is set explicitly to the paper's `Redraw` even though
    /// the scenario is stationary (the evolution only runs on
    /// non-stationary runs, e.g. after
    /// [`ScenarioConfig::with_nonstationary`]); no constructor leaves it
    /// `None`, so the `Redraw` fallback in
    /// [`ScenarioConfig::evolution_or_default`] only ever fires for grid
    /// files written before the field existed.
    pub fn random_congestion() -> Self {
        Self {
            kind: ScenarioKind::RandomCongestion,
            placement: CongestiblePlacement::Random,
            congestible_fraction: 0.10,
            stationary: true,
            epoch_len: 50,
            evolution: Some(ProbabilityEvolution::Redraw),
        }
    }

    /// The paper's *Concentrated Congestion* scenario.
    pub fn concentrated_congestion() -> Self {
        Self {
            kind: ScenarioKind::ConcentratedCongestion,
            placement: CongestiblePlacement::Edge,
            ..Self::random_congestion()
        }
    }

    /// The paper's *No Independence* scenario.
    pub fn no_independence() -> Self {
        Self {
            kind: ScenarioKind::NoIndependence,
            placement: CongestiblePlacement::Correlated,
            ..Self::random_congestion()
        }
    }

    /// The paper's *No Stationarity* scenario (correlated placement plus
    /// non-stationary probabilities).
    pub fn no_stationarity() -> Self {
        Self {
            kind: ScenarioKind::NoStationarity,
            placement: CongestiblePlacement::Correlated,
            stationary: false,
            ..Self::random_congestion()
        }
    }

    /// The paper's *Sparse Topology* scenario (random placement; the harness
    /// pairs it with a Sparse rather than Brite topology).
    pub fn sparse_topology() -> Self {
        Self {
            kind: ScenarioKind::SparseTopology,
            ..Self::random_congestion()
        }
    }

    /// The streaming *Drifting Loss* scenario: random placement, but the
    /// probabilities random-walk every `epoch_len` intervals instead of
    /// being re-drawn, so estimates decay gracefully rather than jumping.
    pub fn drifting_loss() -> Self {
        Self {
            kind: ScenarioKind::DriftingLoss,
            stationary: false,
            epoch_len: 20,
            evolution: Some(ProbabilityEvolution::Drift { sigma: 0.15 }),
            ..Self::random_congestion()
        }
    }

    /// The streaming *Correlation Churn* scenario: correlated placement, and
    /// every `epoch_len` intervals the congestible links are re-partitioned
    /// into new correlated driver groups with fresh probabilities.
    pub fn correlation_churn() -> Self {
        Self {
            kind: ScenarioKind::CorrelationChurn,
            placement: CongestiblePlacement::Correlated,
            stationary: false,
            epoch_len: 25,
            evolution: Some(ProbabilityEvolution::Churn { max_group: 3 }),
            ..Self::random_congestion()
        }
    }

    /// The chaos *Bursty Loss* scenario: random placement with
    /// Gilbert–Elliott two-state Markov dynamics per driver.
    pub fn bursty_loss() -> Self {
        Self {
            kind: ScenarioKind::BurstyLoss,
            stationary: false,
            epoch_len: 5,
            evolution: Some(ProbabilityEvolution::GilbertElliott {
                p_gb: 0.10,
                p_bg: 0.30,
                good_loss: 0.05,
                bad_loss: 0.85,
            }),
            ..Self::random_congestion()
        }
    }

    /// The chaos *Link Cascade* scenario: correlated placement (shared-risk
    /// groups become shared drivers) with whole groups failing and
    /// recovering together.
    pub fn link_cascade() -> Self {
        Self {
            kind: ScenarioKind::LinkCascade,
            placement: CongestiblePlacement::Correlated,
            stationary: false,
            epoch_len: 20,
            evolution: Some(ProbabilityEvolution::SrlgCascade {
                p_fail: 0.10,
                p_recover: 0.45,
                down_loss: 0.95,
            }),
            ..Self::random_congestion()
        }
    }

    /// The chaos *Flapping Links* scenario: drivers go up and down on a
    /// staggered duty-cycle schedule.
    pub fn flapping_links() -> Self {
        Self {
            kind: ScenarioKind::FlappingLinks,
            stationary: false,
            epoch_len: 10,
            evolution: Some(ProbabilityEvolution::Flapping {
                period: 8,
                duty: 0.75,
                down_loss: 0.90,
            }),
            ..Self::random_congestion()
        }
    }

    /// The chaos *Diurnal Load* scenario: probabilities follow a sinusoidal
    /// load curve.
    pub fn diurnal_load() -> Self {
        Self {
            kind: ScenarioKind::DiurnalLoad,
            stationary: false,
            epoch_len: 10,
            evolution: Some(ProbabilityEvolution::Diurnal {
                period: 12,
                amplitude: 0.6,
            }),
            ..Self::random_congestion()
        }
    }

    /// The configuration for a named scenario kind.
    pub fn for_kind(kind: ScenarioKind) -> Self {
        match kind {
            ScenarioKind::RandomCongestion => Self::random_congestion(),
            ScenarioKind::ConcentratedCongestion => Self::concentrated_congestion(),
            ScenarioKind::NoIndependence => Self::no_independence(),
            ScenarioKind::NoStationarity => Self::no_stationarity(),
            ScenarioKind::SparseTopology => Self::sparse_topology(),
            ScenarioKind::DriftingLoss => Self::drifting_loss(),
            ScenarioKind::CorrelationChurn => Self::correlation_churn(),
            ScenarioKind::BurstyLoss => Self::bursty_loss(),
            ScenarioKind::LinkCascade => Self::link_cascade(),
            ScenarioKind::FlappingLinks => Self::flapping_links(),
            ScenarioKind::DiurnalLoad => Self::diurnal_load(),
        }
    }

    /// The evolution this scenario runs between epochs. Every constructor
    /// sets the field explicitly; the `Redraw` fallback exists only for
    /// configurations deserialized from files that predate the field.
    pub fn evolution_or_default(&self) -> ProbabilityEvolution {
        self.evolution.unwrap_or(ProbabilityEvolution::Redraw)
    }

    /// A self-describing label of this scenario's dynamics for sweep JSONL
    /// rows: `"stationary"` for stationary runs, the evolution's label
    /// otherwise.
    pub fn evolution_label(&self) -> String {
        if self.stationary {
            "stationary".to_string()
        } else {
            self.evolution_or_default().label()
        }
    }

    /// Evolves the congestion model between epochs of a non-stationary run
    /// according to this scenario's [`ProbabilityEvolution`], returning the
    /// next epoch's model plus any [`FaultEvent`]s the step injected.
    ///
    /// `epoch` is the index of the epoch about to begin and `interval` its
    /// first measurement interval; the schedule-driven evolutions (flapping,
    /// diurnal) are pure functions of the epoch index, and every emitted
    /// event is stamped with both.
    pub fn evolve_model(
        &self,
        model: &CongestionModel,
        epoch: usize,
        interval: usize,
        rng: &mut StdRng,
    ) -> (CongestionModel, Vec<FaultEvent>) {
        match self.evolution_or_default() {
            ProbabilityEvolution::Redraw => (redraw_probabilities(model, rng), Vec::new()),
            ProbabilityEvolution::Drift { sigma } => {
                (drift_probabilities(model, sigma, rng), Vec::new())
            }
            ProbabilityEvolution::Churn { max_group } => {
                (churn_drivers(model, max_group, rng), Vec::new())
            }
            ProbabilityEvolution::GilbertElliott {
                p_gb,
                p_bg,
                good_loss,
                bad_loss,
            } => dynamics::gilbert_elliott_step(
                model, p_gb, p_bg, good_loss, bad_loss, epoch, interval, rng,
            ),
            ProbabilityEvolution::SrlgCascade {
                p_fail,
                p_recover,
                down_loss,
            } => dynamics::srlg_step(model, p_fail, p_recover, down_loss, epoch, interval, rng),
            ProbabilityEvolution::Flapping {
                period,
                duty,
                down_loss,
            } => dynamics::flapping_step(model, period, duty, down_loss, epoch, interval, rng),
            ProbabilityEvolution::Diurnal { period, amplitude } => {
                dynamics::diurnal_step(model, period, amplitude, epoch, interval)
            }
        }
    }

    /// Layers non-stationarity on top of this scenario (used by the Fig. 4
    /// experiments, which add "No Stationarity" to every congestion
    /// scenario).
    pub fn with_nonstationary(mut self, epoch_len: usize) -> Self {
        self.stationary = false;
        self.epoch_len = epoch_len.max(1);
        self
    }

    /// Builds the congestion model (drivers + probabilities) for one epoch.
    ///
    /// The same placement is kept across epochs of a non-stationary run; only
    /// the probabilities are re-drawn (see
    /// [`crate::Simulator`]), matching §3.2: "the congestion
    /// probabilities of links (the 10 % of them, that is) change every few
    /// time intervals".
    pub fn build_model(&self, network: &Network, rng: &mut StdRng) -> CongestionModel {
        let placement = self.place_congestible(network, rng);
        let model = build_drivers(network, &placement, self.placement, rng);
        // Chaos evolutions encode per-driver regime state in the driver
        // probability; normalize the fresh model into that encoding (a
        // no-op for the paper's evolutions).
        dynamics::initialize_model(model, self.evolution, rng)
    }

    /// Chooses which links are congestible under this scenario.
    pub fn place_congestible(&self, network: &Network, rng: &mut StdRng) -> Vec<LinkId> {
        let observed: Vec<LinkId> = network
            .link_ids()
            .filter(|&l| !network.paths_through_link(l).is_empty())
            .collect();
        let target = ((network.num_links() as f64 * self.congestible_fraction).round() as usize)
            .clamp(1, observed.len());
        match self.placement {
            CongestiblePlacement::Random => {
                let mut pool = observed;
                pool.shuffle(rng);
                pool.truncate(target);
                pool.sort_unstable();
                pool
            }
            CongestiblePlacement::Edge => {
                let mut scored: Vec<(f64, LinkId)> = observed
                    .iter()
                    .map(|&l| (edge_score(network, l), l))
                    .collect();
                // Highest edge score first (closest to path endpoints).
                scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                let mut picked: Vec<LinkId> =
                    scored.into_iter().take(target).map(|(_, l)| l).collect();
                picked.sort_unstable();
                picked
            }
            CongestiblePlacement::Correlated => {
                let mut groups = shared_router_groups(network);
                groups.shuffle(rng);
                let mut picked: Vec<LinkId> = Vec::new();
                let mut seen: HashSet<LinkId> = HashSet::new();
                for g in groups {
                    if picked.len() >= target {
                        break;
                    }
                    let fresh: Vec<LinkId> = g.into_iter().filter(|l| !seen.contains(l)).collect();
                    if fresh.len() < 2 {
                        continue;
                    }
                    for l in fresh {
                        seen.insert(l);
                        picked.push(l);
                    }
                }
                // If the topology does not offer enough correlated groups
                // (e.g. tiny test instances), fill up randomly so the
                // congestible fraction is still honored.
                if picked.len() < target {
                    let mut rest: Vec<LinkId> =
                        observed.into_iter().filter(|l| !seen.contains(l)).collect();
                    rest.shuffle(rng);
                    picked.extend(rest.into_iter().take(target - picked.len()));
                }
                picked.sort_unstable();
                picked
            }
        }
    }
}

/// How close a link is to the edge of the network: the mean, over the paths
/// traversing it, of its normalized position along the path (0 = first hop
/// at the source, 1 = last hop before the destination). Links with a high
/// score sit near path endpoints, i.e. at the edge of the network.
pub fn edge_score(network: &Network, link: LinkId) -> f64 {
    let paths = network.paths_through_link(link);
    if paths.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for &p in paths {
        let path = network.path(p);
        let pos = path
            .links
            .iter()
            .position(|&l| l == link)
            .expect("index is consistent") as f64;
        let denom = (path.len() - 1).max(1) as f64;
        total += pos / denom;
    }
    total / paths.len() as f64
}

/// Builds the drivers for a set of congestible links.
///
/// With [`CongestiblePlacement::Correlated`], links of the same shared-router
/// group get a single shared driver (perfect correlation); otherwise every
/// congestible link gets its own private driver. Probabilities are drawn
/// uniformly from (0, 1), as in the paper.
fn build_drivers(
    network: &Network,
    congestible: &[LinkId],
    placement: CongestiblePlacement,
    rng: &mut StdRng,
) -> CongestionModel {
    let congestible_set: HashSet<LinkId> = congestible.iter().copied().collect();
    let mut assigned: HashSet<LinkId> = HashSet::new();
    let mut drivers = Vec::new();

    if placement == CongestiblePlacement::Correlated {
        for group in shared_router_groups(network) {
            let members: Vec<LinkId> = group
                .into_iter()
                .filter(|l| congestible_set.contains(l) && !assigned.contains(l))
                .collect();
            if members.len() < 2 {
                continue;
            }
            for &l in &members {
                assigned.insert(l);
            }
            drivers.push(Driver {
                probability: rng.gen_range(0.01..1.0),
                members,
            });
        }
    }
    for &l in congestible {
        if assigned.contains(&l) {
            continue;
        }
        drivers.push(Driver {
            probability: rng.gen_range(0.01..1.0),
            members: vec![l],
        });
    }
    CongestionModel::new(drivers)
}

/// Re-draws every driver probability (used between epochs of a
/// non-stationary experiment) while keeping the driver structure fixed.
pub fn redraw_probabilities(model: &CongestionModel, rng: &mut StdRng) -> CongestionModel {
    let drivers = model
        .drivers
        .iter()
        .map(|d| Driver {
            probability: rng.gen_range(0.01..1.0),
            members: d.members.clone(),
        })
        .collect();
    CongestionModel::new(drivers)
}

/// Moves every driver probability by a bounded uniform step in
/// `[-sigma, sigma]`, clamped into (0, 1), keeping the driver structure
/// fixed — the *Drifting Loss* evolution.
pub fn drift_probabilities(
    model: &CongestionModel,
    sigma: f64,
    rng: &mut StdRng,
) -> CongestionModel {
    let sigma = sigma.abs().max(1e-6);
    let drivers = model
        .drivers
        .iter()
        .map(|d| Driver {
            probability: (d.probability + rng.gen_range(-sigma..sigma)).clamp(0.01, 0.99),
            members: d.members.clone(),
        })
        .collect();
    CongestionModel::new(drivers)
}

/// Re-partitions the congestible links into new driver groups of at most
/// `max_group` links with fresh probabilities — the *Correlation Churn*
/// evolution. The congestible link *set* is preserved; only the grouping
/// (which links fail together) and the probabilities change.
pub fn churn_drivers(
    model: &CongestionModel,
    max_group: usize,
    rng: &mut StdRng,
) -> CongestionModel {
    let max_group = max_group.max(1);
    let mut links = model.congestible_links();
    links.shuffle(rng);
    let mut drivers = Vec::new();
    let mut i = 0usize;
    while i < links.len() {
        let size = rng.gen_range(1..=max_group).min(links.len() - i);
        drivers.push(Driver {
            probability: rng.gen_range(0.01..1.0),
            members: links[i..i + size].to_vec(),
        });
        i += size;
    }
    CongestionModel::new(drivers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tomo_graph::toy::fig1_case1;

    #[test]
    fn named_scenarios_have_expected_knobs() {
        assert!(ScenarioConfig::random_congestion().stationary);
        assert_eq!(
            ScenarioConfig::concentrated_congestion().placement,
            CongestiblePlacement::Edge
        );
        assert_eq!(
            ScenarioConfig::no_independence().placement,
            CongestiblePlacement::Correlated
        );
        assert!(!ScenarioConfig::no_stationarity().stationary);
        for kind in ScenarioKind::all() {
            assert_eq!(ScenarioConfig::for_kind(kind).kind, kind);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn with_nonstationary_overrides_stationarity() {
        let s = ScenarioConfig::random_congestion().with_nonstationary(25);
        assert!(!s.stationary);
        assert_eq!(s.epoch_len, 25);
    }

    #[test]
    fn placement_honors_the_fraction() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(1);
        let mut cfg = ScenarioConfig::random_congestion();
        cfg.congestible_fraction = 0.5;
        let picked = cfg.place_congestible(&net, &mut rng);
        assert_eq!(picked.len(), 2); // 4 links * 0.5
    }

    #[test]
    fn edge_scores_rank_destination_links_higher() {
        let net = fig1_case1();
        // e2 and e3 are last hops of their paths; e1 and e4 are first hops.
        assert!(edge_score(&net, tomo_graph::toy::E2) > edge_score(&net, tomo_graph::toy::E1));
        assert!(edge_score(&net, tomo_graph::toy::E3) > edge_score(&net, tomo_graph::toy::E4));
    }

    #[test]
    fn edge_placement_prefers_edge_links() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(2);
        let mut cfg = ScenarioConfig::concentrated_congestion();
        cfg.congestible_fraction = 0.5;
        let picked = cfg.place_congestible(&net, &mut rng);
        assert_eq!(picked, vec![tomo_graph::toy::E2, tomo_graph::toy::E3]);
    }

    #[test]
    fn model_marginals_are_in_range_and_limited_to_congestible() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = ScenarioConfig::random_congestion();
        cfg.congestible_fraction = 0.5;
        let model = cfg.build_model(&net, &mut rng);
        let congestible = model.congestible_links();
        assert_eq!(congestible.len(), 2);
        for l in net.link_ids() {
            let m = model.marginal(l);
            if congestible.contains(&l) {
                assert!(m > 0.0 && m < 1.0);
            } else {
                assert_eq!(m, 0.0);
            }
        }
    }

    #[test]
    fn streaming_kinds_resolve_and_carry_evolutions() {
        let drift = ScenarioConfig::drifting_loss();
        assert!(!drift.stationary);
        assert!(matches!(
            drift.evolution,
            Some(ProbabilityEvolution::Drift { .. })
        ));
        let churn = ScenarioConfig::correlation_churn();
        assert_eq!(churn.placement, CongestiblePlacement::Correlated);
        assert!(matches!(
            churn.evolution,
            Some(ProbabilityEvolution::Churn { .. })
        ));
        for kind in ScenarioKind::streaming() {
            assert_eq!(ScenarioConfig::for_kind(kind).kind, kind);
            assert!(!kind.label().is_empty());
        }
        // The paper's figure list is unchanged by the streaming kinds.
        assert_eq!(ScenarioKind::all().len(), 5);
    }

    #[test]
    fn drift_moves_probabilities_by_bounded_steps() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(9);
        let mut cfg = ScenarioConfig::drifting_loss();
        cfg.congestible_fraction = 0.5;
        let m1 = cfg.build_model(&net, &mut rng);
        let m2 = drift_probabilities(&m1, 0.15, &mut rng);
        assert_eq!(m1.congestible_links(), m2.congestible_links());
        for (a, b) in m1.drivers.iter().zip(&m2.drivers) {
            assert_eq!(a.members, b.members);
            assert!((a.probability - b.probability).abs() <= 0.15 + 1e-12);
            assert!((0.01..=0.99).contains(&b.probability));
        }
    }

    #[test]
    fn churn_preserves_the_congestible_set_but_regroups_it() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(11);
        let mut cfg = ScenarioConfig::correlation_churn();
        cfg.congestible_fraction = 1.0; // all 4 toy links, so groups can form
        let m1 = cfg.build_model(&net, &mut rng);
        let m2 = churn_drivers(&m1, 3, &mut rng);
        assert_eq!(m1.congestible_links(), m2.congestible_links());
        for d in &m2.drivers {
            assert!(!d.members.is_empty() && d.members.len() <= 3);
            assert!(d.probability > 0.0 && d.probability < 1.0);
        }
        // Across many churn steps the grouping must actually change at least
        // once (it is a re-partition, not a redraw).
        let sig = |m: &CongestionModel| {
            let mut groups: Vec<Vec<LinkId>> = m
                .drivers
                .iter()
                .map(|d| {
                    let mut g = d.members.clone();
                    g.sort_unstable();
                    g
                })
                .collect();
            groups.sort();
            groups
        };
        let changed = (0..20).any(|_| sig(&churn_drivers(&m1, 3, &mut rng)) != sig(&m1));
        assert!(changed);
    }

    #[test]
    fn evolve_model_dispatches_on_the_configured_evolution() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(13);
        let mut cfg = ScenarioConfig::drifting_loss();
        cfg.congestible_fraction = 0.5;
        let m1 = cfg.build_model(&net, &mut rng);
        let (drifted, events) = cfg.evolve_model(&m1, 1, 50, &mut rng);
        assert!(events.is_empty(), "paper evolutions emit no fault events");
        for (a, b) in m1.drivers.iter().zip(&drifted.drivers) {
            assert!((a.probability - b.probability).abs() <= 0.15 + 1e-12);
        }
        // No evolution configured -> paper redraw semantics.
        cfg.evolution = None;
        let (redrawn, events) = cfg.evolve_model(&m1, 1, 50, &mut rng);
        assert!(events.is_empty());
        assert_eq!(m1.congestible_links(), redrawn.congestible_links());
    }

    #[test]
    fn chaos_constructors_are_nonstationary_with_explicit_evolution() {
        for kind in ScenarioKind::chaos() {
            let cfg = ScenarioConfig::for_kind(kind);
            assert_eq!(cfg.kind, kind);
            assert!(!cfg.stationary, "{kind:?} must be non-stationary");
            assert!(cfg.evolution.is_some(), "{kind:?} must set its evolution");
            assert_ne!(cfg.evolution_label(), "stationary");
        }
        // Satellite: every constructor makes the evolution explicit — the
        // paper scenarios included.
        for kind in ScenarioKind::all() {
            assert!(ScenarioConfig::for_kind(kind).evolution.is_some());
        }
    }

    #[test]
    fn evolution_labels_describe_the_dynamics() {
        assert_eq!(
            ScenarioConfig::random_congestion().evolution_label(),
            "stationary"
        );
        assert_eq!(
            ScenarioConfig::no_stationarity().evolution_label(),
            "redraw"
        );
        assert!(ScenarioConfig::bursty_loss()
            .evolution_label()
            .starts_with("gilbert-elliott("));
        assert!(ScenarioConfig::link_cascade()
            .evolution_label()
            .starts_with("srlg-cascade("));
        assert!(ScenarioConfig::flapping_links()
            .evolution_label()
            .starts_with("flapping("));
        assert!(ScenarioConfig::diurnal_load()
            .evolution_label()
            .starts_with("diurnal("));
    }

    #[test]
    fn chaos_evolutions_emit_stamped_fault_events() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(77);
        let mut cfg = ScenarioConfig::flapping_links();
        cfg.congestible_fraction = 1.0;
        let model = cfg.build_model(&net, &mut rng);
        // The flapping schedule is periodic, so walking the epochs must emit
        // at least one event, and every event carries the stamp it was given.
        let mut saw_event = false;
        let mut m = model;
        for epoch in 1..=16 {
            let interval = epoch * cfg.epoch_len;
            let (next, events) = cfg.evolve_model(&m, epoch, interval, &mut rng);
            for e in &events {
                assert_eq!(e.epoch, epoch);
                assert_eq!(e.interval, interval);
                assert!(!e.links.is_empty());
                saw_event = true;
            }
            m = next;
        }
        assert!(saw_event, "flapping schedule emitted no events");
    }

    #[test]
    fn redraw_keeps_structure_but_changes_probabilities() {
        let net = fig1_case1();
        let mut rng = StdRng::seed_from_u64(4);
        let mut cfg = ScenarioConfig::no_stationarity();
        cfg.congestible_fraction = 0.5;
        let m1 = cfg.build_model(&net, &mut rng);
        let m2 = redraw_probabilities(&m1, &mut rng);
        assert_eq!(m1.congestible_links(), m2.congestible_links());
        let changed = m1
            .drivers
            .iter()
            .zip(&m2.drivers)
            .any(|(a, b)| (a.probability - b.probability).abs() > 1e-9);
        assert!(changed);
    }
}
