//! The packet-loss model and the path-measurement modes.
//!
//! Follows §2 and §3.2 of the paper: a link is *good* during an interval when
//! it drops at most a fraction `f` of the packets it receives, *congested*
//! otherwise; the simulator draws the actual loss rate of a good link
//! uniformly from `(0, f)` and of a congested link uniformly from `(f, 1)`
//! (the loss model of Padmanabhan et al. [12], also used by NetQuest [13] and
//! CLINK [11]). A path of `d` links is declared congested when it drops more
//! than a fraction `1 − (1−f)^d` of the packets sent along it — the
//! transmission rate of `d` consecutive good links.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The link-level loss model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LossModel {
    /// The good/congested threshold `f` on the link loss fraction
    /// (0.01 in the paper).
    pub link_threshold: f64,
}

impl Default for LossModel {
    fn default() -> Self {
        Self {
            link_threshold: 0.01,
        }
    }
}

impl LossModel {
    /// Creates a loss model with a custom threshold.
    pub fn new(link_threshold: f64) -> Self {
        assert!(
            link_threshold > 0.0 && link_threshold < 1.0,
            "threshold must be in (0,1)"
        );
        Self { link_threshold }
    }

    /// Draws the per-packet loss rate of a link for one interval.
    pub fn draw_loss_rate(&self, rng: &mut impl Rng, congested: bool) -> f64 {
        if congested {
            rng.gen_range(self.link_threshold..1.0)
        } else {
            rng.gen_range(0.0..self.link_threshold)
        }
    }

    /// The path-level congestion threshold for a path of `d` links:
    /// `1 − (1−f)^d`.
    pub fn path_threshold(&self, d: usize) -> f64 {
        1.0 - (1.0 - self.link_threshold).powi(d as i32)
    }

    /// Classifies a path from its measured loss fraction.
    pub fn path_is_congested(&self, loss_fraction: f64, d: usize) -> bool {
        loss_fraction > self.path_threshold(d)
    }

    /// Classifies a path from a loss fraction *estimated from `packets`
    /// probe packets*.
    ///
    /// The plain threshold rule is a statement about the underlying loss
    /// rate; applied directly to a finite-sample fraction it misclassifies a
    /// good path whenever sampling noise pushes the estimate over the
    /// threshold (up to ~50 % of intervals for a path whose good links drew
    /// loss rates near `f`). This variant adds a two-sigma binomial
    /// confidence slack, so a path is declared congested only when its
    /// measured loss is inconsistent with every all-good assignment of link
    /// loss rates. The slack vanishes as `packets → ∞`, recovering the
    /// asymptotic rule.
    pub fn path_is_congested_sampled(&self, loss_fraction: f64, d: usize, packets: usize) -> bool {
        let t = self.path_threshold(d);
        if packets == 0 {
            return loss_fraction > t;
        }
        let slack = 2.0 * (t * (1.0 - t) / packets as f64).sqrt();
        loss_fraction > t + slack
    }
}

/// How path observations are derived from link states.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MeasurementMode {
    /// Ideal end-to-end monitoring: a path is congested exactly when at
    /// least one of its links is congested (Assumptions 1 and 2 hold without
    /// measurement noise). Useful for isolating algorithmic error from
    /// probing error, and for fast unit tests.
    Ideal,
    /// Packet-level probing: `packets_per_interval` probes are sent along
    /// every path each interval and dropped per-link according to the loss
    /// model; the path is classified from its empirical loss fraction. This
    /// is the mode used for the paper's experiments and introduces realistic
    /// false positives/negatives in the path observations.
    PacketProbes {
        /// Number of probe packets sent along each path per interval.
        packets_per_interval: usize,
    },
}

impl Default for MeasurementMode {
    fn default() -> Self {
        MeasurementMode::PacketProbes {
            packets_per_interval: 400,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn loss_rates_respect_the_threshold() {
        let model = LossModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let good = model.draw_loss_rate(&mut rng, false);
            assert!((0.0..0.01).contains(&good));
            let bad = model.draw_loss_rate(&mut rng, true);
            assert!((0.01..1.0).contains(&bad));
        }
    }

    #[test]
    fn path_threshold_grows_with_length() {
        let model = LossModel::default();
        let t1 = model.path_threshold(1);
        let t5 = model.path_threshold(5);
        assert!((t1 - 0.01).abs() < 1e-12);
        assert!(t5 > t1);
        assert!(t5 < 0.05 + 1e-9); // 1-(0.99)^5 ≈ 0.049
    }

    #[test]
    fn path_classification() {
        let model = LossModel::default();
        assert!(!model.path_is_congested(0.005, 1));
        assert!(model.path_is_congested(0.05, 1));
        // A 3-link path tolerates slightly more loss than a 1-link path.
        let t3 = model.path_threshold(3);
        assert!(!model.path_is_congested(t3 * 0.99, 3));
        assert!(model.path_is_congested(t3 * 1.01, 3));
    }

    #[test]
    #[should_panic(expected = "threshold must be in (0,1)")]
    fn rejects_invalid_threshold() {
        let _ = LossModel::new(1.5);
    }

    #[test]
    fn default_measurement_mode_is_probing() {
        match MeasurementMode::default() {
            MeasurementMode::PacketProbes {
                packets_per_interval,
            } => assert!(packets_per_interval > 0),
            other => panic!("unexpected default {other:?}"),
        }
    }
}
